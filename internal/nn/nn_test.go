package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseForward(t *testing.T) {
	d := &Dense{In: 2, Out: 2, W: []float64{1, 2, 3, 4}, B: []float64{10, 20},
		dW: make([]float64, 4), dB: make([]float64, 2),
		mW: make([]float64, 4), vW: make([]float64, 4),
		mB: make([]float64, 2), vB: make([]float64, 2)}
	y := d.Forward([]float64{1, 1}, nil)
	if y[0] != 13 || y[1] != 27 {
		t.Fatalf("forward = %v, want [13 27]", y)
	}
}

// TestDenseGradCheck verifies analytic gradients against finite
// differences for a scalar loss L = Σ y_i².
func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	x := []float64{0.5, -1.2, 2.0}
	loss := func() float64 {
		y := d.Forward(x, nil)
		return y[0]*y[0] + y[1]*y[1]
	}
	y := d.Forward(x, nil)
	dy := []float64{2 * y[0], 2 * y[1]}
	d.ZeroGrad()
	dx := d.Backward(x, dy, make([]float64, 3))

	const eps = 1e-6
	for i := range d.W {
		orig := d.W[i]
		d.W[i] = orig + eps
		lp := loss()
		d.W[i] = orig - eps
		lm := loss()
		d.W[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-d.dW[i]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("dW[%d]: analytic %g vs numeric %g", i, d.dW[i], num)
		}
	}
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := loss()
		x[i] = orig - eps
		lm := loss()
		x[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("dx[%d]: analytic %g vs numeric %g", i, dx[i], num)
		}
	}
}

// TestNetGradCheck end-to-end: loss = logits[k]² + value² through the
// shared trunk.
func TestNetGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewPolicyValueNet(4, 8, 3, rng)
	x := []float64{1, 0, -0.5, 0.25}
	loss := func() float64 {
		c := net.Forward(x, nil)
		return c.Logits[1]*c.Logits[1] + c.Value*c.Value
	}
	c := net.Forward(x, nil)
	dLogits := []float64{0, 2 * c.Logits[1], 0}
	dValue := 2 * c.Value
	net.ZeroGrad()
	net.Backward(c, dLogits, dValue)

	const eps = 1e-6
	check := func(name string, p, g []float64) {
		for _, i := range []int{0, len(p) / 2, len(p) - 1} {
			orig := p[i]
			p[i] = orig + eps
			lp := loss()
			p[i] = orig - eps
			lm := loss()
			p[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-g[i]) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: analytic %g vs numeric %g", name, i, g[i], num)
			}
		}
	}
	check("L1.W", net.L1.W, net.L1.dW)
	check("L2.W", net.L2.W, net.L2.dW)
	check("Pi.W", net.Pi.W, net.Pi.dW)
	check("V.W", net.V.W, net.V.dW)
	check("L1.B", net.L1.B, net.L1.dB)
}

// TestAdamLearnsRegression: the net must fit a small value-regression
// problem, proving optimizer + backprop wiring.
func TestAdamLearnsRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewPolicyValueNet(2, 16, 2, rng)
	samples := make([][]float64, 64)
	targets := make([]float64, 64)
	for i := range samples {
		a, b := rng.Float64(), rng.Float64()
		samples[i] = []float64{a, b}
		targets[i] = a - b
	}
	mse := func() float64 {
		s := 0.0
		for i, x := range samples {
			c := net.Forward(x, nil)
			d := c.Value - targets[i]
			s += d * d
		}
		return s / float64(len(samples))
	}
	before := mse()
	for iter := 0; iter < 300; iter++ {
		net.ZeroGrad()
		for i, x := range samples {
			c := net.Forward(x, nil)
			net.Backward(c, make([]float64, 2), (c.Value-targets[i])/float64(len(samples)))
		}
		net.Step(1e-2)
	}
	after := mse()
	if after > before/10 {
		t.Errorf("MSE barely improved: before %g after %g", before, after)
	}
}

func TestMaskedSoftmax(t *testing.T) {
	logits := []float64{1, 100, 2, 3}
	legal := []bool{true, false, true, true}
	p := MaskedSoftmax(logits, legal, nil)
	if p[1] != 0 {
		t.Fatal("illegal action got probability")
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %g", sum)
	}
	if !(p[3] > p[2] && p[2] > p[0]) {
		t.Error("ordering not preserved")
	}
}

func TestMaskedSoftmaxPanicsWhenAllIllegal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on fully masked distribution")
		}
	}()
	MaskedSoftmax([]float64{1, 2}, []bool{false, false}, nil)
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	probs := []float64{0.1, 0.7, 0.2}
	counts := make([]int, 3)
	n := 20000
	for i := 0; i < n; i++ {
		counts[Sample(probs, rng)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-p) > 0.02 {
			t.Errorf("action %d frequency %.3f, want %.3f", i, got, p)
		}
	}
}

func TestArgmaxAndEntropy(t *testing.T) {
	if Argmax([]float64{0.2, 0.5, 0.3}) != 1 {
		t.Error("argmax wrong")
	}
	if h := Entropy([]float64{1, 0, 0}); h != 0 {
		t.Errorf("deterministic entropy = %g", h)
	}
	uni := Entropy([]float64{0.25, 0.25, 0.25, 0.25})
	if math.Abs(uni-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %g, want ln 4", uni)
	}
}

func TestNumParams(t *testing.T) {
	net := NewPolicyValueNet(10, 8, 5, rand.New(rand.NewSource(5)))
	want := (10*8 + 8) + (8*8 + 8) + (8*5 + 5) + (8*1 + 1)
	if got := net.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}
