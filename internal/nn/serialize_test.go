package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNetMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewPolicyValueNet(6, 8, 4, rng)
	// Touch the optimizer so non-trivial state is serialized.
	x := []float64{1, 0, 1, 0, 0.5, -0.5}
	c := net.Forward(x, nil)
	net.Backward(c, []float64{1, 0, 0, 0}, 0.3)
	net.Step(1e-3)

	data, err := net.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalNet(data)
	if err != nil {
		t.Fatal(err)
	}
	a := net.Forward(x, nil)
	b := back.Forward(x, nil)
	for i := range a.Logits {
		if math.Abs(a.Logits[i]-b.Logits[i]) > 1e-12 {
			t.Fatalf("logit %d differs after round trip: %g vs %g", i, a.Logits[i], b.Logits[i])
		}
	}
	if math.Abs(a.Value-b.Value) > 1e-12 {
		t.Fatal("value head differs after round trip")
	}
	// Training continues identically: one more identical step on both
	// must keep weights equal (Adam step counter preserved).
	for _, n := range []*PolicyValueNet{net, back} {
		c := n.Forward(x, nil)
		n.Backward(c, []float64{0, 1, 0, 0}, -0.1)
		n.Step(1e-3)
	}
	for i := range net.L1.W {
		if math.Abs(net.L1.W[i]-back.L1.W[i]) > 1e-12 {
			t.Fatal("training diverged after checkpoint resume")
		}
	}
}

func TestUnmarshalNetRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalNet([]byte("junk")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := UnmarshalNet([]byte(`{"version":9}`)); err == nil {
		t.Error("bad version must fail")
	}
	if _, err := UnmarshalNet([]byte(
		`{"version":1,"in":2,"hidden":2,"actions":1,` +
			`"l1":{"in":2,"out":2,"w":[1],"b":[0,0]},` +
			`"l2":{"in":2,"out":2,"w":[1,2,3,4],"b":[0,0]},` +
			`"pi":{"in":2,"out":1,"w":[1,2],"b":[0]},` +
			`"v":{"in":2,"out":1,"w":[1,2],"b":[0]}}`)); err == nil {
		t.Error("wrong weight count must fail")
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewPolicyValueNet(3, 4, 2, rng)
	clone := net.Clone()
	clone.L1.W[0] += 100
	if net.L1.W[0] == clone.L1.W[0] {
		t.Fatal("clone shares weights")
	}
}

func TestPerturbChangesOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewPolicyValueNet(3, 4, 2, rng)
	x := []float64{1, 1, 1}
	before := net.Forward(x, nil).Logits[0]
	net.Perturb(0.5, rng)
	after := net.Forward(x, nil).Logits[0]
	if before == after {
		t.Fatal("perturbation had no effect")
	}
}
