package nn

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// Network serialization lets a trained Woodblock policy be checkpointed
// and resumed — the paper's agent "can incrementally produce better
// trees", which in a deployment means carrying the learned policy across
// re-partitioning runs as data distribution drifts.

type denseJSON struct {
	In  int       `json:"in"`
	Out int       `json:"out"`
	W   []float64 `json:"w"`
	B   []float64 `json:"b"`
	MW  []float64 `json:"mw,omitempty"`
	VW  []float64 `json:"vw,omitempty"`
	MB  []float64 `json:"mb,omitempty"`
	VB  []float64 `json:"vb,omitempty"`
}

type netJSON struct {
	Version int       `json:"version"`
	In      int       `json:"in"`
	Hidden  int       `json:"hidden"`
	Actions int       `json:"actions"`
	Steps   int       `json:"steps"`
	L1      denseJSON `json:"l1"`
	L2      denseJSON `json:"l2"`
	Pi      denseJSON `json:"pi"`
	V       denseJSON `json:"v"`
}

func (d *Dense) toJSON() denseJSON {
	return denseJSON{
		In: d.In, Out: d.Out,
		W: d.W, B: d.B,
		MW: d.mW, VW: d.vW, MB: d.mB, VB: d.vB,
	}
}

func denseFromJSON(j denseJSON) (*Dense, error) {
	if len(j.W) != j.In*j.Out || len(j.B) != j.Out {
		return nil, fmt.Errorf("nn: dense %dx%d has %d weights, %d biases", j.In, j.Out, len(j.W), len(j.B))
	}
	d := &Dense{
		In: j.In, Out: j.Out,
		W:  j.W,
		B:  j.B,
		dW: make([]float64, j.In*j.Out), dB: make([]float64, j.Out),
		mW: j.MW, vW: j.VW, mB: j.MB, vB: j.VB,
	}
	if d.mW == nil {
		d.mW = make([]float64, j.In*j.Out)
	}
	if d.vW == nil {
		d.vW = make([]float64, j.In*j.Out)
	}
	if d.mB == nil {
		d.mB = make([]float64, j.Out)
	}
	if d.vB == nil {
		d.vB = make([]float64, j.Out)
	}
	if len(d.mW) != j.In*j.Out || len(d.vW) != j.In*j.Out || len(d.mB) != j.Out || len(d.vB) != j.Out {
		return nil, fmt.Errorf("nn: dense %dx%d optimizer state has wrong shape", j.In, j.Out)
	}
	return d, nil
}

// Marshal serializes the network weights and Adam state.
func (n *PolicyValueNet) Marshal() ([]byte, error) {
	return json.Marshal(netJSON{
		Version: 1,
		In:      n.In, Hidden: n.Hidden, Actions: n.Actions, Steps: n.steps,
		L1: n.L1.toJSON(), L2: n.L2.toJSON(), Pi: n.Pi.toJSON(), V: n.V.toJSON(),
	})
}

// UnmarshalNet reconstructs a network checkpointed with Marshal. Training
// can resume: Adam moments and the step counter are preserved.
func UnmarshalNet(data []byte) (*PolicyValueNet, error) {
	var j netJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("nn: decode network: %w", err)
	}
	if j.Version != 1 {
		return nil, fmt.Errorf("nn: unsupported network version %d", j.Version)
	}
	n := &PolicyValueNet{In: j.In, Hidden: j.Hidden, Actions: j.Actions, steps: j.Steps}
	var err error
	if n.L1, err = denseFromJSON(j.L1); err != nil {
		return nil, err
	}
	if n.L2, err = denseFromJSON(j.L2); err != nil {
		return nil, err
	}
	if n.Pi, err = denseFromJSON(j.Pi); err != nil {
		return nil, err
	}
	if n.V, err = denseFromJSON(j.V); err != nil {
		return nil, err
	}
	if n.L1.In != j.In || n.L1.Out != j.Hidden || n.L2.Out != j.Hidden ||
		n.Pi.Out != j.Actions || n.V.Out != 1 {
		return nil, fmt.Errorf("nn: layer shapes inconsistent with header")
	}
	return n, nil
}

// Clone deep-copies the network (weights and optimizer state).
func (n *PolicyValueNet) Clone() *PolicyValueNet {
	data, err := n.Marshal()
	if err != nil {
		panic(err) // marshal of in-memory state cannot fail
	}
	out, err := UnmarshalNet(data)
	if err != nil {
		panic(err)
	}
	return out
}

// Perturb adds Gaussian noise to all weights (exploration restarts).
func (n *PolicyValueNet) Perturb(scale float64, rng *rand.Rand) {
	for _, d := range []*Dense{n.L1, n.L2, n.Pi, n.V} {
		for i := range d.W {
			d.W[i] += rng.NormFloat64() * scale
		}
	}
}
