// Package nn is a small from-scratch neural-network substrate for the
// Woodblock RL agent (Sec. 5.2.3): dense layers with manual
// backpropagation, the Adam optimizer, and masked softmax utilities. It
// replaces the Ray RLlib dependency of the paper's prototype; the paper
// notes the network is two shared fully-connected ReLU layers with a
// linear policy head (|A| outputs) and a scalar value head.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a fully-connected layer y = Wx + b with gradient accumulation
// and per-parameter Adam state.
type Dense struct {
	In, Out int
	W       []float64 // row-major [Out][In]
	B       []float64
	dW, dB  []float64
	mW, vW  []float64
	mB, vB  []float64
}

// NewDense initializes a layer with He-scaled Gaussian weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W: make([]float64, in*out), B: make([]float64, out),
		dW: make([]float64, in*out), dB: make([]float64, out),
		mW: make([]float64, in*out), vW: make([]float64, in*out),
		mB: make([]float64, out), vB: make([]float64, out),
	}
	scale := math.Sqrt(2.0 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

// Forward computes y = Wx + b into dst (allocated when nil).
func (d *Dense) Forward(x, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, d.Out)
	}
	for o := 0; o < d.Out; o++ {
		w := d.W[o*d.In : (o+1)*d.In]
		s := d.B[o]
		for i, xv := range x {
			s += w[i] * xv
		}
		dst[o] = s
	}
	return dst
}

// Backward accumulates parameter gradients for one sample and returns
// dL/dx in dx. When dx is nil the input gradient is not computed (use for
// the first layer, whose input needs no gradient). x must be the input
// passed to Forward; dx, when non-nil, must have length In.
func (d *Dense) Backward(x, dy, dx []float64) []float64 {
	if dx != nil {
		for i := range dx {
			dx[i] = 0
		}
	}
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		if g == 0 {
			continue
		}
		d.dB[o] += g
		w := d.W[o*d.In : (o+1)*d.In]
		dw := d.dW[o*d.In : (o+1)*d.In]
		if dx == nil {
			for i, xv := range x {
				dw[i] += g * xv
			}
			continue
		}
		for i, xv := range x {
			dw[i] += g * xv
			dx[i] += g * w[i]
		}
	}
	return dx
}

// adam applies one Adam update to a parameter vector.
func adam(p, g, m, v []float64, lr, beta1, beta2, eps float64, t int) {
	bc1 := 1 - math.Pow(beta1, float64(t))
	bc2 := 1 - math.Pow(beta2, float64(t))
	for i := range p {
		m[i] = beta1*m[i] + (1-beta1)*g[i]
		v[i] = beta2*v[i] + (1-beta2)*g[i]*g[i]
		mh := m[i] / bc1
		vh := v[i] / bc2
		p[i] -= lr * mh / (math.Sqrt(vh) + eps)
		g[i] = 0
	}
}

// Step applies Adam with the given learning rate and zeroes gradients.
// t is the 1-based global step count.
func (d *Dense) Step(lr float64, t int) {
	adam(d.W, d.dW, d.mW, d.vW, lr, 0.9, 0.999, 1e-8, t)
	adam(d.B, d.dB, d.mB, d.vB, lr, 0.9, 0.999, 1e-8, t)
}

// ZeroGrad clears accumulated gradients.
func (d *Dense) ZeroGrad() {
	for i := range d.dW {
		d.dW[i] = 0
	}
	for i := range d.dB {
		d.dB[i] = 0
	}
}

// NumParams returns the parameter count.
func (d *Dense) NumParams() int { return len(d.W) + len(d.B) }

// PolicyValueNet is the Woodblock network: a shared ReLU trunk with a
// |A|-way policy head and a scalar value head (Sec. 5.2.3).
type PolicyValueNet struct {
	In, Hidden, Actions int
	L1, L2              *Dense
	Pi, V               *Dense
	steps               int
}

// NewPolicyValueNet builds the network. hidden corresponds to the paper's
// 512-unit layers (configurable for CPU budgets).
func NewPolicyValueNet(in, hidden, actions int, rng *rand.Rand) *PolicyValueNet {
	if in <= 0 || hidden <= 0 || actions <= 0 {
		panic(fmt.Sprintf("nn: invalid net shape in=%d hidden=%d actions=%d", in, hidden, actions))
	}
	return &PolicyValueNet{
		In: in, Hidden: hidden, Actions: actions,
		L1: NewDense(in, hidden, rng),
		L2: NewDense(hidden, hidden, rng),
		Pi: NewDense(hidden, actions, rng),
		V:  NewDense(hidden, 1, rng),
	}
}

// Cache holds the activations of one forward pass, needed for Backward.
type Cache struct {
	X          []float64
	H1, H2     []float64 // post-ReLU activations
	Z1, Z2     []float64 // pre-activation values
	Logits     []float64
	Value      float64
	h1g, h2g   []float64 // scratch gradients
	dz1, dz2   []float64
	piG, valG  []float64
	havescrtch bool
}

// Forward runs the network on x, returning (and retaining) the cache.
func (n *PolicyValueNet) Forward(x []float64, c *Cache) *Cache {
	if c == nil {
		c = &Cache{}
	}
	c.X = x
	c.Z1 = n.L1.Forward(x, c.Z1)
	c.H1 = relu(c.Z1, c.H1)
	c.Z2 = n.L2.Forward(c.H1, c.Z2)
	c.H2 = relu(c.Z2, c.H2)
	c.Logits = n.Pi.Forward(c.H2, c.Logits)
	c.valG = n.V.Forward(c.H2, c.valG)
	c.Value = c.valG[0]
	return c
}

func relu(z, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(z))
	}
	for i, v := range z {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
	return dst
}

// Backward accumulates gradients for one sample given the loss gradients
// on the policy logits and the value output.
func (n *PolicyValueNet) Backward(c *Cache, dLogits []float64, dValue float64) {
	if !c.havescrtch {
		c.h2g = make([]float64, n.Hidden)
		c.h1g = make([]float64, n.Hidden)
		c.dz1 = make([]float64, n.Hidden)
		c.dz2 = make([]float64, n.Hidden)
		c.piG = make([]float64, 1)
		c.havescrtch = true
	}
	// Heads.
	h2grad := n.Pi.Backward(c.H2, dLogits, c.h2g)
	c.piG[0] = dValue
	vgrad := n.V.Backward(c.H2, c.piG, c.dz2)
	for i := range h2grad {
		h2grad[i] += vgrad[i]
	}
	// Trunk layer 2.
	for i := range h2grad {
		if c.Z2[i] <= 0 {
			h2grad[i] = 0
		}
	}
	h1grad := n.L2.Backward(c.H1, h2grad, c.h1g)
	for i := range h1grad {
		if c.Z1[i] <= 0 {
			h1grad[i] = 0
		}
	}
	n.L1.Backward(c.X, h1grad, nil)
}

// Step applies Adam to all layers.
func (n *PolicyValueNet) Step(lr float64) {
	n.steps++
	n.L1.Step(lr, n.steps)
	n.L2.Step(lr, n.steps)
	n.Pi.Step(lr, n.steps)
	n.V.Step(lr, n.steps)
}

// ZeroGrad clears all gradients.
func (n *PolicyValueNet) ZeroGrad() {
	n.L1.ZeroGrad()
	n.L2.ZeroGrad()
	n.Pi.ZeroGrad()
	n.V.ZeroGrad()
}

// NumParams returns the total parameter count.
func (n *PolicyValueNet) NumParams() int {
	return n.L1.NumParams() + n.L2.NumParams() + n.Pi.NumParams() + n.V.NumParams()
}

// MaskedSoftmax writes the softmax of logits restricted to legal actions
// into dst; illegal entries get probability zero. It panics if no action
// is legal.
func MaskedSoftmax(logits []float64, legal []bool, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(logits))
	}
	maxv := math.Inf(-1)
	any := false
	for i, l := range logits {
		if legal[i] {
			any = true
			if l > maxv {
				maxv = l
			}
		}
	}
	if !any {
		panic("nn: MaskedSoftmax with no legal action")
	}
	sum := 0.0
	for i, l := range logits {
		if legal[i] {
			dst[i] = math.Exp(l - maxv)
			sum += dst[i]
		} else {
			dst[i] = 0
		}
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// Sample draws an index from a probability distribution.
func Sample(probs []float64, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	last := -1
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		acc += p
		last = i
		if u < acc {
			return i
		}
	}
	if last < 0 {
		panic("nn: Sample of zero distribution")
	}
	return last
}

// Argmax returns the index of the largest probability.
func Argmax(probs []float64) int {
	best, bv := 0, math.Inf(-1)
	for i, p := range probs {
		if p > bv {
			best, bv = i, p
		}
	}
	return best
}

// Entropy returns −Σ p log p of a distribution.
func Entropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}
