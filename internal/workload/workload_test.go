package workload

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

func TestFig3Shape(t *testing.T) {
	spec := Fig3(5000, 1)
	if spec.Table.N != 5000 {
		t.Fatalf("N = %d", spec.Table.N)
	}
	if len(spec.Queries) != 2 || len(spec.Cuts) != 3 {
		t.Fatalf("queries=%d cuts=%d", len(spec.Queries), len(spec.Cuts))
	}
	// Q2 selects ~1% of rows, Q1 ~19%.
	m := cost.PerQueryMatches(spec.Table, spec.Queries, nil)
	if f := float64(m[0]) / 5000; f < 0.15 || f > 0.25 {
		t.Errorf("Q1 selectivity %.3f, want ≈0.19", f)
	}
	if f := float64(m[1]) / 5000; f < 0.005 || f > 0.02 {
		t.Errorf("Q2 selectivity %.3f, want ≈0.01", f)
	}
}

func TestFig4EachQuerySelectsArmPlusCenter(t *testing.T) {
	armN := 250
	spec := Fig4(armN, 2)
	if spec.Table.N != 4*armN+1 {
		t.Fatalf("N = %d", spec.Table.N)
	}
	m := cost.PerQueryMatches(spec.Table, spec.Queries, nil)
	for i, got := range m {
		if got != int64(armN+1) {
			t.Errorf("query %d selects %d rows, want %d (arm + center)", i, got, armN+1)
		}
	}
}

func TestExtractCutsDedupes(t *testing.T) {
	p := expr.Pred{Col: 0, Op: expr.Lt, Literal: 5}
	q1 := expr.AndQ("a", p)
	q2 := expr.AndQ("b", p, expr.Pred{Col: 1, Op: expr.Gt, Literal: 3})
	q3 := expr.Query{Name: "c", Root: expr.And(expr.NewAdv(0), expr.NewAdv(1), expr.NewAdv(0))}
	cuts := ExtractCuts([]expr.Query{q1, q2, q3})
	// Expect: p, col1>3, AC0, AC1 — four distinct cuts.
	if len(cuts) != 4 {
		t.Fatalf("cuts = %d, want 4: %+v", len(cuts), cuts)
	}
	advs := 0
	for _, c := range cuts {
		if c.IsAdv {
			advs++
		}
	}
	if advs != 2 {
		t.Errorf("adv cuts = %d, want 2", advs)
	}
}

func TestTPCHSchemaAndGeneration(t *testing.T) {
	spec := TPCH(TPCHConfig{Rows: 3000, SeedsPerTmpl: 2, Seed: 1})
	s := spec.Table.Schema
	if s.NumCols() != 68 {
		t.Fatalf("columns = %d, want 68 (paper)", s.NumCols())
	}
	if len(spec.Queries) != 2*len(TPCHTemplates) {
		t.Fatalf("queries = %d", len(spec.Queries))
	}
	if len(spec.ACs) != 3 {
		t.Fatalf("advanced cuts = %d, want 3 (AC0..AC2)", len(spec.ACs))
	}
	// Date correlations from the spec must hold row by row.
	col := s.MustCol
	for r := 0; r < spec.Table.N; r += 97 {
		od := spec.Table.Cols[col("o_orderdate")][r]
		sd := spec.Table.Cols[col("l_shipdate")][r]
		rd := spec.Table.Cols[col("l_receiptdate")][r]
		if sd <= od || sd > od+121 {
			t.Fatalf("row %d: shipdate %d outside orderdate+1..121 (%d)", r, sd, od)
		}
		if rd <= sd || rd > sd+30 {
			t.Fatalf("row %d: receiptdate %d outside shipdate+1..30", r, rd)
		}
		// Region derived from nation.
		if spec.Table.Cols[col("cr_name")][r] != spec.Table.Cols[col("c_nationkey")][r]/5 {
			t.Fatalf("row %d: cr_name not derived from c_nationkey", r)
		}
	}
	// Values stay in declared domains.
	for c, colDef := range s.Cols {
		if colDef.Kind != table.Categorical {
			continue
		}
		for r := 0; r < spec.Table.N; r += 53 {
			v := spec.Table.Cols[c][r]
			if v < 0 || v >= colDef.Dom {
				t.Fatalf("col %s value %d outside dom %d", colDef.Name, v, colDef.Dom)
			}
		}
	}
}

func TestTPCHWorkloadSelectivityBallpark(t *testing.T) {
	spec := TPCH(TPCHConfig{Rows: 20000, SeedsPerTmpl: 3, Seed: 2})
	sel := cost.Selectivity(spec.Table, spec.Queries, spec.ACs)
	// Paper: overall scan selectivity 21.3%. Accept a generous band — the
	// denormalized generator is synthetic.
	if sel < 0.05 || sel > 0.45 {
		t.Errorf("workload selectivity %.3f, want ≈0.21", sel)
	}
}

func TestTPCHQueriesDeterministic(t *testing.T) {
	a := TPCH(TPCHConfig{Rows: 500, SeedsPerTmpl: 1, Seed: 9})
	b := TPCH(TPCHConfig{Rows: 500, SeedsPerTmpl: 1, Seed: 9})
	for i := range a.Queries {
		if a.Queries[i].String() != b.Queries[i].String() {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
	for c := range a.Table.Cols {
		for r := 0; r < a.Table.N; r += 101 {
			if a.Table.Cols[c][r] != b.Table.Cols[c][r] {
				t.Fatal("table differs across identical seeds")
			}
		}
	}
}

func TestTPCHDay(t *testing.T) {
	if d := TPCHDay(1992, 1, 1); d != 0 {
		t.Errorf("epoch = %d", d)
	}
	if d := TPCHDay(1993, 1, 1); d != 366 {
		t.Errorf("1993-01-01 = %d, want 366 (1992 is a leap year)", d)
	}
	if d := TPCHDay(1992, 3, 1); d != 60 {
		t.Errorf("1992-03-01 = %d, want 60", d)
	}
}

func TestErrorLogIntShape(t *testing.T) {
	spec := ErrorLogInt(ErrorLogConfig{Rows: 5000, NumQueries: 100, Seed: 3})
	if spec.Table.Schema.NumCols() != 50 {
		t.Fatalf("columns = %d, want 50", spec.Table.Schema.NumCols())
	}
	if len(spec.Queries) != 100 {
		t.Fatalf("queries = %d", len(spec.Queries))
	}
	sel := cost.Selectivity(spec.Table, spec.Queries, nil)
	if sel > 0.01 {
		t.Errorf("ErrorLog-Int selectivity %.5f too high; paper ≈0.000005", sel)
	}
	if sel == 0 {
		t.Error("queries must match at least their seed rows")
	}
}

func TestErrorLogExtShape(t *testing.T) {
	spec := ErrorLogExt(ErrorLogConfig{Rows: 5000, NumQueries: 100, Seed: 4})
	if spec.Table.Schema.NumCols() != 58 {
		t.Fatalf("columns = %d, want 58", spec.Table.Schema.NumCols())
	}
	app := spec.Table.Schema.MustCol("app_id")
	if spec.Table.Schema.Cols[app].Dom != 3600 {
		t.Fatalf("app_id dom = %d, want 3600", spec.Table.Schema.Cols[app].Dom)
	}
	selInt := cost.Selectivity(ErrorLogInt(ErrorLogConfig{Rows: 5000, NumQueries: 100, Seed: 4}).Table,
		ErrorLogInt(ErrorLogConfig{Rows: 5000, NumQueries: 100, Seed: 4}).Queries, nil)
	selExt := cost.Selectivity(spec.Table, spec.Queries, nil)
	if selExt <= selInt {
		t.Errorf("Ext selectivity (%.6f) should exceed Int (%.6f), as in the paper", selExt, selInt)
	}
}

func TestErrorLogQueriesTouchIngestRarely(t *testing.T) {
	// The paper's range baseline accesses ~100% of tuples, which requires
	// queries to be mostly unconstrained on the ingest column.
	spec := ErrorLogInt(ErrorLogConfig{Rows: 2000, NumQueries: 200, Seed: 5})
	ingest := IngestColumn(spec.Table.Schema)
	withIngest := 0
	for _, q := range spec.Queries {
		for _, p := range q.Preds() {
			if p.Col == ingest {
				withIngest++
				break
			}
		}
	}
	if withIngest > len(spec.Queries)/2 {
		t.Errorf("%d/%d queries constrain ingest_date; range baseline would skip too much", withIngest, len(spec.Queries))
	}
}
