// Package workload generates the datasets and query workloads of the
// paper's evaluation (Sec. 7): a TPC-H-style denormalized fact table with
// the 15 filter templates, synthetic equivalents of the two proprietary
// ErrorLog workloads, and the Figure 3 / Figure 4 microbenchmarks.
//
// All generators are deterministic given a seed.
package workload

import (
	"math/rand"

	"repro/internal/expr"
	"repro/internal/table"
)

// Spec bundles a generated dataset with its workload and search space: the
// inputs every constructor needs (Fig. 1: data sample + queries +
// candidate cuts).
type Spec struct {
	Name    string
	Table   *table.Table
	Queries []expr.Query
	ACs     []expr.AdvCut
	Cuts    []Pred2Cut
}

// Pred2Cut is a candidate cut in workload form; the qd package converts it
// to a core.Cut. IsAdv selects the advanced-cut table.
type Pred2Cut struct {
	IsAdv bool
	Pred  expr.Pred
	Adv   int
}

// UnaryCuts wraps predicates as candidate cuts.
func UnaryCuts(ps ...expr.Pred) []Pred2Cut {
	out := make([]Pred2Cut, len(ps))
	for i, p := range ps {
		out[i] = Pred2Cut{Pred: p}
	}
	return out
}

// Fig3 generates the Sec. 5.1 microbenchmark: two uniform columns
// (cpu ∈ [0,100), disk ∈ [0,1) scaled to integer [0,10000)), a disjunctive
// query Q1 (cpu<10 OR cpu>90) and a unary query Q2 (disk<0.01), with
// candidate cuts {cpu<10, cpu>90, disk<0.01}. Greedy is forced onto the
// disk cut (scan ratio ≈ 50.5%); Woodblock finds the 4-block layout
// (scan ratio ≈ 10.4%).
func Fig3(n int, seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	schema := table.MustSchema([]table.Column{
		{Name: "cpu", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "disk", Kind: table.Numeric, Min: 0, Max: 9999},
	})
	tbl := table.New(schema, n)
	row := make([]int64, 2)
	for i := 0; i < n; i++ {
		row[0] = int64(rng.Intn(100))
		row[1] = int64(rng.Intn(10000))
		tbl.AppendRow(row)
	}
	cpu, disk := 0, 1
	q1 := expr.Query{
		Name: "Q1",
		Root: expr.Or(
			expr.NewPred(expr.Pred{Col: cpu, Op: expr.Lt, Literal: 10}),
			expr.NewPred(expr.Pred{Col: cpu, Op: expr.Gt, Literal: 90}),
		),
	}
	q2 := expr.AndQ("Q2", expr.Pred{Col: disk, Op: expr.Lt, Literal: 100})
	cuts := UnaryCuts(
		expr.Pred{Col: cpu, Op: expr.Lt, Literal: 10},
		expr.Pred{Col: cpu, Op: expr.Gt, Literal: 90},
		expr.Pred{Col: disk, Op: expr.Lt, Literal: 100},
	)
	return &Spec{Name: "fig3", Table: tbl, Queries: []expr.Query{q1, q2}, Cuts: cuts}
}

// Fig4 generates the Sec. 6.2 overlap microbenchmark: a cross-shaped
// dataset on (x, y) ∈ [0,100)² with four N-record arms and one record at
// the center; four queries each select one arm plus the center record
// (N+1 records each). Without overlap any binary cutting leaves three
// queries reading N extra tuples; replicating the center record removes
// all waste.
func Fig4(armN int, seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	schema := table.MustSchema([]table.Column{
		{Name: "x", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "y", Kind: table.Numeric, Min: 0, Max: 99},
	})
	tbl := table.New(schema, 4*armN+1)
	emit := func(x, y int64) { tbl.AppendRow([]int64{x, y}) }
	// Center singleton.
	emit(50, 50)
	for i := 0; i < armN; i++ {
		// Left arm: x ∈ [0,45), y ∈ [45,55).
		emit(int64(rng.Intn(45)), int64(45+rng.Intn(10)))
		// Right arm: x ∈ [56,100), y ∈ [45,55).
		emit(int64(56+rng.Intn(44)), int64(45+rng.Intn(10)))
		// Bottom arm: y ∈ [0,45), x ∈ [45,55).
		emit(int64(45+rng.Intn(10)), int64(rng.Intn(45)))
		// Top arm: y ∈ [56,100), x ∈ [45,55).
		emit(int64(45+rng.Intn(10)), int64(56+rng.Intn(44)))
	}
	x, y := 0, 1
	queries := []expr.Query{
		expr.AndQ("Q1",
			expr.Pred{Col: x, Op: expr.Le, Literal: 50},
			expr.Pred{Col: y, Op: expr.Ge, Literal: 45},
			expr.Pred{Col: y, Op: expr.Lt, Literal: 55}),
		expr.AndQ("Q2",
			expr.Pred{Col: x, Op: expr.Ge, Literal: 50},
			expr.Pred{Col: y, Op: expr.Ge, Literal: 45},
			expr.Pred{Col: y, Op: expr.Lt, Literal: 55}),
		expr.AndQ("Q3",
			expr.Pred{Col: y, Op: expr.Le, Literal: 50},
			expr.Pred{Col: x, Op: expr.Ge, Literal: 45},
			expr.Pred{Col: x, Op: expr.Lt, Literal: 55}),
		expr.AndQ("Q4",
			expr.Pred{Col: y, Op: expr.Ge, Literal: 50},
			expr.Pred{Col: x, Op: expr.Ge, Literal: 45},
			expr.Pred{Col: x, Op: expr.Lt, Literal: 55}),
	}
	var preds []expr.Pred
	for _, q := range queries {
		preds = append(preds, q.Preds()...)
	}
	return &Spec{Name: "fig4", Table: tbl, Queries: queries, Cuts: UnaryCuts(dedupe(preds)...)}
}

// dedupe removes structurally duplicate predicates, preserving order.
func dedupe(ps []expr.Pred) []expr.Pred {
	seen := make(map[string]bool)
	var out []expr.Pred
	for _, p := range ps {
		k := p.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}

// ExtractCuts implements Sec. 3.4: the candidate cut set is exactly the
// de-duplicated pushed-down unary predicates of the workload, plus one
// advanced cut per distinct AC reference.
func ExtractCuts(queries []expr.Query) []Pred2Cut {
	var preds []expr.Pred
	advSeen := make(map[int]bool)
	var advs []int
	for _, q := range queries {
		preds = append(preds, q.Preds()...)
		for _, a := range q.AdvRefs() {
			if !advSeen[a] {
				advSeen[a] = true
				advs = append(advs, a)
			}
		}
	}
	out := UnaryCuts(dedupe(preds)...)
	for _, a := range advs {
		out = append(out, Pred2Cut{IsAdv: true, Adv: a})
	}
	return out
}
