package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/table"
)

// The paper evaluates on TPC-H SF1000, denormalized so that "many filters
// touch" a single table (Sec. 7.2), restricted to one month (77M rows, 68
// columns). This generator reproduces the schema shape — every column the
// 15 filter templates touch, plus fillers up to 68 columns — with the
// spec's uniform distributions and date correlations, at a configurable
// row count. Skipping ratios depend on distributions, not absolute scale.

// Day numbering: days since 1992-01-01. TPC-H order dates span
// [1992-01-01, 1998-08-02]; we use 2400 days.
const (
	tpchDateMin = 0
	tpchDateMax = 2400
)

// TPCHDay converts (year, month) to the generator's day number
// (approximate 30.44-day months are irrelevant — we use exact spans).
func TPCHDay(year, month, day int) int64 {
	days := int64(0)
	for y := 1992; y < year; y++ {
		days += 365
		if y%4 == 0 {
			days++
		}
	}
	mdays := []int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	for m := 1; m < month; m++ {
		days += int64(mdays[m-1])
	}
	if year%4 == 0 && month > 2 {
		days++
	}
	return days + int64(day-1)
}

// TPCHConfig parameterizes the generator.
type TPCHConfig struct {
	Rows         int   // fact-table rows (paper: 77M; default 100_000)
	SeedsPerTmpl int   // query instances per template (paper: 10)
	Seed         int64 // master seed
}

func (c *TPCHConfig) defaults() {
	if c.Rows == 0 {
		c.Rows = 100_000
	}
	if c.SeedsPerTmpl == 0 {
		c.SeedsPerTmpl = 10
	}
}

// Column names used by templates.
var tpchShipmodes = []string{"AIR", "AIR REG", "FOB", "MAIL", "RAIL", "SHIP", "TRUCK"}
var tpchShipinstruct = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}
var tpchSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
var tpchPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var tpchRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

func tpchNations() []string {
	out := make([]string, 25)
	for i := range out {
		out[i] = fmt.Sprintf("NATION_%02d", i)
	}
	return out
}

func tpchBrands() []string {
	out := make([]string, 25)
	for i := range out {
		out[i] = fmt.Sprintf("Brand#%d%d", i/5+1, i%5+1)
	}
	return out
}

func tpchContainers() []string {
	sizes := []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	kinds := []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	var out []string
	for _, s := range sizes {
		for _, k := range kinds {
			out = append(out, s+" "+k)
		}
	}
	return out
}

func tpchTypes() []string {
	a := []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	b := []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	c := []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	var out []string
	for _, x := range a {
		for _, y := range b {
			for _, z := range c {
				out = append(out, x+" "+y+" "+z)
			}
		}
	}
	return out
}

// TPCHSchema builds the 68-column denormalized schema.
func TPCHSchema() *table.Schema {
	nations := tpchNations()
	cols := []table.Column{
		{Name: "l_orderkey", Kind: table.Numeric, Min: 0, Max: 6_000_000},
		{Name: "l_partkey", Kind: table.Numeric, Min: 0, Max: 200_000},
		{Name: "l_suppkey", Kind: table.Numeric, Min: 0, Max: 10_000},
		{Name: "l_linenumber", Kind: table.Numeric, Min: 1, Max: 7},
		{Name: "l_quantity", Kind: table.Numeric, Min: 1, Max: 50},
		{Name: "l_extendedprice", Kind: table.Numeric, Min: 900, Max: 105_000},
		{Name: "l_discount", Kind: table.Numeric, Min: 0, Max: 10},
		{Name: "l_tax", Kind: table.Numeric, Min: 0, Max: 8},
		{Name: "l_returnflag", Kind: table.Categorical, Dom: 3, Dict: []string{"A", "N", "R"}},
		{Name: "l_linestatus", Kind: table.Categorical, Dom: 2, Dict: []string{"F", "O"}},
		{Name: "l_shipdate", Kind: table.Numeric, Min: tpchDateMin, Max: tpchDateMax + 122},
		{Name: "l_commitdate", Kind: table.Numeric, Min: tpchDateMin, Max: tpchDateMax + 122},
		{Name: "l_receiptdate", Kind: table.Numeric, Min: tpchDateMin, Max: tpchDateMax + 152},
		{Name: "l_shipinstruct", Kind: table.Categorical, Dom: 4, Dict: tpchShipinstruct},
		{Name: "l_shipmode", Kind: table.Categorical, Dom: 7, Dict: tpchShipmodes},
		{Name: "o_orderdate", Kind: table.Numeric, Min: tpchDateMin, Max: tpchDateMax},
		{Name: "o_orderpriority", Kind: table.Categorical, Dom: 5, Dict: tpchPriorities},
		{Name: "o_totalprice", Kind: table.Numeric, Min: 800, Max: 600_000},
		{Name: "o_orderstatus", Kind: table.Categorical, Dom: 3, Dict: []string{"F", "O", "P"}},
		{Name: "c_mktsegment", Kind: table.Categorical, Dom: 5, Dict: tpchSegments},
		{Name: "c_nationkey", Kind: table.Categorical, Dom: 25, Dict: nations},
		{Name: "cn_name", Kind: table.Categorical, Dom: 25, Dict: nations},
		{Name: "cr_name", Kind: table.Categorical, Dom: 5, Dict: tpchRegions},
		{Name: "s_nationkey", Kind: table.Categorical, Dom: 25, Dict: nations},
		{Name: "sn_name", Kind: table.Categorical, Dom: 25, Dict: nations},
		{Name: "sr_name", Kind: table.Categorical, Dom: 5, Dict: tpchRegions},
		{Name: "p_brand", Kind: table.Categorical, Dom: 25, Dict: tpchBrands()},
		{Name: "p_container", Kind: table.Categorical, Dom: 40, Dict: tpchContainers()},
		{Name: "p_size", Kind: table.Numeric, Min: 1, Max: 50},
		{Name: "p_type", Kind: table.Categorical, Dom: 150, Dict: tpchTypes()},
		{Name: "p_retailprice", Kind: table.Numeric, Min: 900, Max: 2100},
	}
	// Fillers up to the paper's 68 columns: alternating numeric and small
	// categorical columns the workload never references.
	for i := len(cols); i < 68; i++ {
		if i%2 == 0 {
			cols = append(cols, table.Column{
				Name: fmt.Sprintf("f_num%02d", i), Kind: table.Numeric, Min: 0, Max: 9999})
		} else {
			cols = append(cols, table.Column{
				Name: fmt.Sprintf("f_cat%02d", i), Kind: table.Categorical, Dom: 16})
		}
	}
	return table.MustSchema(cols)
}

// TPCHACs returns the advanced-cut table of Sec. 6.1:
// AC0: c_nationkey = s_nationkey, AC1: l_shipdate < l_commitdate,
// AC2: l_commitdate < l_receiptdate.
func TPCHACs(s *table.Schema) []expr.AdvCut {
	return []expr.AdvCut{
		{Left: s.MustCol("c_nationkey"), Op: expr.Eq, Right: s.MustCol("s_nationkey")},
		{Left: s.MustCol("l_shipdate"), Op: expr.Lt, Right: s.MustCol("l_commitdate")},
		{Left: s.MustCol("l_commitdate"), Op: expr.Lt, Right: s.MustCol("l_receiptdate")},
	}
}

// TPCH generates the denormalized table plus the 15-template workload.
func TPCH(cfg TPCHConfig) *Spec {
	cfg.defaults()
	schema := TPCHSchema()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := table.New(schema, cfg.Rows)
	row := make([]int64, schema.NumCols())
	col := schema.MustCol
	for i := 0; i < cfg.Rows; i++ {
		orderdate := int64(rng.Intn(tpchDateMax + 1))
		shipdate := orderdate + 1 + int64(rng.Intn(121))
		commitdate := orderdate + 30 + int64(rng.Intn(61))
		receiptdate := shipdate + 1 + int64(rng.Intn(30))
		cnat := int64(rng.Intn(25))
		snat := int64(rng.Intn(25))
		// linestatus follows shipdate per spec (F if shipped long ago).
		linestatus := int64(0)
		if shipdate > tpchDateMax-180 {
			linestatus = 1
		}
		returnflag := int64(rng.Intn(3))
		if linestatus == 1 {
			returnflag = 1 // N for open lines
		}
		orderstatus := int64(rng.Intn(3))
		row[col("l_orderkey")] = int64(rng.Intn(6_000_000))
		row[col("l_partkey")] = int64(rng.Intn(200_000))
		row[col("l_suppkey")] = int64(rng.Intn(10_000))
		row[col("l_linenumber")] = int64(1 + rng.Intn(7))
		row[col("l_quantity")] = int64(1 + rng.Intn(50))
		row[col("l_extendedprice")] = int64(900 + rng.Intn(104_100))
		row[col("l_discount")] = int64(rng.Intn(11))
		row[col("l_tax")] = int64(rng.Intn(9))
		row[col("l_returnflag")] = returnflag
		row[col("l_linestatus")] = linestatus
		row[col("l_shipdate")] = shipdate
		row[col("l_commitdate")] = commitdate
		row[col("l_receiptdate")] = receiptdate
		row[col("l_shipinstruct")] = int64(rng.Intn(4))
		row[col("l_shipmode")] = int64(rng.Intn(7))
		row[col("o_orderdate")] = orderdate
		row[col("o_orderpriority")] = int64(rng.Intn(5))
		row[col("o_totalprice")] = int64(800 + rng.Intn(599_200))
		row[col("o_orderstatus")] = orderstatus
		row[col("c_mktsegment")] = int64(rng.Intn(5))
		row[col("c_nationkey")] = cnat
		row[col("cn_name")] = cnat
		row[col("cr_name")] = cnat / 5
		row[col("s_nationkey")] = snat
		row[col("sn_name")] = snat
		row[col("sr_name")] = snat / 5
		row[col("p_brand")] = int64(rng.Intn(25))
		row[col("p_container")] = int64(rng.Intn(40))
		row[col("p_size")] = int64(1 + rng.Intn(50))
		row[col("p_type")] = int64(rng.Intn(150))
		row[col("p_retailprice")] = int64(900 + rng.Intn(1200))
		for c := 31; c < 68; c++ {
			if schema.Cols[c].Kind == table.Numeric {
				row[c] = int64(rng.Intn(10_000))
			} else {
				row[c] = int64(rng.Intn(16))
			}
		}
		tbl.AppendRow(row)
	}
	queries := TPCHQueries(schema, cfg.SeedsPerTmpl, cfg.Seed+1)
	return &Spec{
		Name:    "tpch",
		Table:   tbl,
		Queries: queries,
		ACs:     TPCHACs(schema),
		Cuts:    ExtractCuts(queries),
	}
}

// TPCHTemplates lists the template ids used (the paper's 15: the 8 from
// Sun et al. plus 7 more, all touching lineitem).
var TPCHTemplates = []int{1, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 17, 18, 19, 21}

// TPCHQueries generates seedsPerTmpl instances per template (150 queries
// for the paper's 10 seeds).
func TPCHQueries(s *table.Schema, seedsPerTmpl int, seed int64) []expr.Query {
	rng := rand.New(rand.NewSource(seed))
	var out []expr.Query
	for _, tmpl := range TPCHTemplates {
		for k := 0; k < seedsPerTmpl; k++ {
			out = append(out, tpchQuery(s, tmpl, k, rng))
		}
	}
	return out
}

// pred builds a unary predicate on a named column.
func pred(s *table.Schema, name string, op expr.Op, lit int64) expr.Pred {
	return expr.Pred{Col: s.MustCol(name), Op: op, Literal: lit}
}

func inPred(s *table.Schema, name string, vals ...int64) expr.Pred {
	return expr.NewIn(s.MustCol(name), vals)
}

// tpchQuery instantiates one filter template. Only the pushed-down filter
// of each TPC-H query is modeled — the layout problem sees predicates,
// not joins/aggregations (Sec. 7.2 denormalizes for exactly this reason).
func tpchQuery(s *table.Schema, tmpl, inst int, rng *rand.Rand) expr.Query {
	name := fmt.Sprintf("q%d#%d", tmpl, inst)
	day := func(lo, hi int) int64 { return int64(lo + rng.Intn(hi-lo+1)) }
	switch tmpl {
	case 1:
		// l_shipdate <= enddate − [60,120] days: scans nearly everything.
		return expr.AndQ(name, pred(s, "l_shipdate", expr.Le, tpchDateMax+122-day(60, 120)))
	case 3:
		d := day(800, 1600)
		return expr.AndQ(name,
			pred(s, "c_mktsegment", expr.Eq, int64(rng.Intn(5))),
			pred(s, "o_orderdate", expr.Lt, d),
			pred(s, "l_shipdate", expr.Gt, d))
	case 4:
		d := day(0, tpchDateMax-90)
		return expr.Query{Name: name, Root: expr.And(
			expr.NewPred(pred(s, "o_orderdate", expr.Ge, d)),
			expr.NewPred(pred(s, "o_orderdate", expr.Lt, d+90)),
			expr.NewAdv(2), // l_commitdate < l_receiptdate
		)}
	case 5:
		y := day(0, 5) * 365
		return expr.Query{Name: name, Root: expr.And(
			expr.NewPred(pred(s, "sr_name", expr.Eq, int64(rng.Intn(5)))),
			expr.NewPred(pred(s, "o_orderdate", expr.Ge, y)),
			expr.NewPred(pred(s, "o_orderdate", expr.Lt, y+365)),
			expr.NewAdv(0), // c_nationkey = s_nationkey
		)}
	case 6:
		y := day(0, 5) * 365
		d := int64(2 + rng.Intn(8))
		return expr.AndQ(name,
			pred(s, "l_shipdate", expr.Ge, y),
			pred(s, "l_shipdate", expr.Lt, y+365),
			pred(s, "l_discount", expr.Ge, d-1),
			pred(s, "l_discount", expr.Le, d+1),
			pred(s, "l_quantity", expr.Lt, int64(24+rng.Intn(2))))
	case 7:
		n1, n2 := int64(rng.Intn(25)), int64(rng.Intn(25))
		return expr.Query{Name: name, Root: expr.And(
			expr.Or(
				expr.And(
					expr.NewPred(pred(s, "sn_name", expr.Eq, n1)),
					expr.NewPred(pred(s, "cn_name", expr.Eq, n2))),
				expr.And(
					expr.NewPred(pred(s, "sn_name", expr.Eq, n2)),
					expr.NewPred(pred(s, "cn_name", expr.Eq, n1)))),
			expr.NewPred(pred(s, "l_shipdate", expr.Ge, TPCHDay(1995, 1, 1))),
			expr.NewPred(pred(s, "l_shipdate", expr.Le, TPCHDay(1996, 12, 31))),
		)}
	case 8:
		return expr.AndQ(name,
			pred(s, "cr_name", expr.Eq, int64(rng.Intn(5))),
			pred(s, "o_orderdate", expr.Ge, TPCHDay(1995, 1, 1)),
			pred(s, "o_orderdate", expr.Le, TPCHDay(1996, 12, 31)),
			pred(s, "p_type", expr.Eq, int64(rng.Intn(150))))
	case 9:
		// p_name LIKE '%<color>%' approximated by a p_type IN family.
		base := rng.Intn(30)
		vals := make([]int64, 0, 5)
		for i := 0; i < 5; i++ {
			vals = append(vals, int64(base*5+i))
		}
		return expr.AndQ(name, inPred(s, "p_type", vals...))
	case 10:
		d := day(0, tpchDateMax-90)
		return expr.AndQ(name,
			pred(s, "o_orderdate", expr.Ge, d),
			pred(s, "o_orderdate", expr.Lt, d+90),
			pred(s, "l_returnflag", expr.Eq, 2)) // 'R'
	case 12:
		m1, m2 := int64(rng.Intn(7)), int64(rng.Intn(7))
		y := day(0, 5) * 365
		return expr.Query{Name: name, Root: expr.And(
			expr.NewPred(inPred(s, "l_shipmode", m1, m2)),
			expr.NewAdv(1), // l_shipdate < l_commitdate
			expr.NewAdv(2), // l_commitdate < l_receiptdate
			expr.NewPred(pred(s, "l_receiptdate", expr.Ge, y)),
			expr.NewPred(pred(s, "l_receiptdate", expr.Lt, y+365)),
		)}
	case 14:
		d := day(0, tpchDateMax-30)
		return expr.AndQ(name,
			pred(s, "l_shipdate", expr.Ge, d),
			pred(s, "l_shipdate", expr.Lt, d+30))
	case 17:
		return expr.AndQ(name,
			pred(s, "p_brand", expr.Eq, int64(rng.Intn(25))),
			pred(s, "p_container", expr.Eq, int64(rng.Intn(40))),
			pred(s, "l_quantity", expr.Lt, int64(2+rng.Intn(10))))
	case 18:
		return expr.AndQ(name, pred(s, "l_quantity", expr.Gt, int64(44+rng.Intn(5))))
	case 19:
		block := func(brand int64, conts []int64, qlo, sizeHi int64) *expr.Node {
			return expr.And(
				expr.NewPred(pred(s, "p_brand", expr.Eq, brand)),
				expr.NewPred(inPred(s, "p_container", conts...)),
				expr.NewPred(pred(s, "l_quantity", expr.Ge, qlo)),
				expr.NewPred(pred(s, "l_quantity", expr.Le, qlo+10)),
				expr.NewPred(pred(s, "p_size", expr.Ge, 1)),
				expr.NewPred(pred(s, "p_size", expr.Le, sizeHi)),
				expr.NewPred(inPred(s, "l_shipmode", 0, 1)),         // AIR, AIR REG
				expr.NewPred(pred(s, "l_shipinstruct", expr.Eq, 1)), // DELIVER IN PERSON
			)
		}
		return expr.Query{Name: name, Root: expr.Or(
			block(int64(rng.Intn(25)), []int64{0, 1, 2, 3}, int64(1+rng.Intn(10)), 5),
			block(int64(rng.Intn(25)), []int64{8, 9, 10, 11}, int64(10+rng.Intn(10)), 10),
			block(int64(rng.Intn(25)), []int64{16, 17, 18, 19}, int64(20+rng.Intn(10)), 15),
		)}
	case 21:
		return expr.Query{Name: name, Root: expr.And(
			expr.NewPred(pred(s, "sn_name", expr.Eq, int64(rng.Intn(25)))),
			expr.NewPred(pred(s, "o_orderstatus", expr.Eq, 0)), // 'F'
			expr.NewAdv(2), // l_receiptdate > l_commitdate
		)}
	}
	panic(fmt.Sprintf("workload: unknown TPC-H template %d", tmpl))
}
