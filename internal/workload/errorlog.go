package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/table"
)

// The paper's two real workloads (Sec. 7.2) are proprietary kernel
// crash-dump logs from a large software vendor. These generators are
// synthetic equivalents that reproduce the published statistics:
//
//	ErrorLog-Int: 50 columns, an 8-value categorical event type, OS build
//	  date, OS version (string), client ingest date (~1 week), validity
//	  boolean; 1000 queries over 5 dimensions with overall selectivity
//	  ≈0.0005% (queries usually return < 100 of 100M rows).
//	ErrorLog-Ext: 58 columns, ~3600 distinct categorical values, 15 days,
//	  selectivity ≈0.0697%.
//
// The mechanism the paper credits for qd-tree's wins — heavy correlation
// between columns and between data and query literals — is reproduced by
// (a) Zipf-skewed categorical draws, (b) a version→build-date functional
// dependency, and (c) query literals drawn from data rows.

// ErrorLogConfig parameterizes either generator.
type ErrorLogConfig struct {
	Rows       int   // default 100_000
	NumQueries int   // default 1000 (paper)
	Seed       int64 // master seed
}

func (c *ErrorLogConfig) defaults() {
	if c.Rows == 0 {
		c.Rows = 100_000
	}
	if c.NumQueries == 0 {
		c.NumQueries = 1000
	}
}

// errorLogSchema builds an ErrorLog-style schema. domCat is the domain of
// the big categorical (8 for Int's event type focus, 3600 for Ext's
// application IDs), ncols the total column count (50 / 58), days the
// ingest window length.
func errorLogSchema(name string, ncols int, domCat int64, days int64, versions int64) *table.Schema {
	events := []string{"DEVICE_CRASH", "LIVE_KERNEL_EVENT", "BUGCHECK", "HANG", "WATCHDOG", "THERMAL", "POWER_LOSS", "UNKNOWN"}
	verDict := make([]string, versions)
	for i := range verDict {
		verDict[i] = fmt.Sprintf("10.0.%d.%d", 17000+i/16, i%16)
	}
	appDict := make([]string, domCat)
	for i := range appDict {
		appDict[i] = fmt.Sprintf("app_%04d", i)
	}
	cols := []table.Column{
		{Name: "event_type", Kind: table.Categorical, Dom: 8, Dict: events},
		{Name: "os_build_date", Kind: table.Numeric, Min: 0, Max: 1499},
		{Name: "os_version", Kind: table.Categorical, Dom: versions, Dict: verDict},
		{Name: "ingest_date", Kind: table.Numeric, Min: 0, Max: days*24 - 1}, // hour granularity
		{Name: "validity", Kind: table.Categorical, Dom: 2, Dict: []string{"INVALID", "VALID"}},
		{Name: "app_id", Kind: table.Categorical, Dom: domCat, Dict: appDict},
	}
	for i := len(cols); i < ncols; i++ {
		if i%3 == 0 {
			cols = append(cols, table.Column{Name: fmt.Sprintf("x_num%02d", i), Kind: table.Numeric, Min: 0, Max: 99_999})
		} else {
			cols = append(cols, table.Column{Name: fmt.Sprintf("x_cat%02d", i), Kind: table.Categorical, Dom: 32})
		}
	}
	_ = name
	return table.MustSchema(cols)
}

// errorLogGen fills a table with correlated draws.
func errorLogGen(schema *table.Schema, rows int, days int64, versions int64, domCat int64, rng *rand.Rand) *table.Table {
	tbl := table.New(schema, rows)
	row := make([]int64, schema.NumCols())
	col := schema.MustCol
	zipfVer := rand.NewZipf(rng, 1.3, 1.0, uint64(versions-1))
	zipfApp := rand.NewZipf(rng, 1.2, 2.0, uint64(domCat-1))
	zipfEvt := rand.NewZipf(rng, 1.5, 1.0, 7)
	zipfCat := rand.NewZipf(rng, 1.4, 1.0, 31)
	for i := 0; i < rows; i++ {
		ver := int64(zipfVer.Uint64())
		evt := int64(zipfEvt.Uint64())
		// Functional dependency: newer versions have newer build dates.
		build := (versions - 1 - ver) * (1500 / versions)
		build += int64(rng.Intn(int(1500/versions) + 1))
		if build > 1499 {
			build = 1499
		}
		row[col("event_type")] = evt
		row[col("os_build_date")] = build
		row[col("os_version")] = ver
		row[col("ingest_date")] = int64(rng.Intn(int(days * 24)))
		valid := int64(1)
		if evt == 7 || rng.Intn(20) == 0 { // UNKNOWN events are mostly invalid
			valid = 0
		}
		row[col("validity")] = valid
		row[col("app_id")] = int64(zipfApp.Uint64())
		for c := 6; c < schema.NumCols(); c++ {
			if schema.Cols[c].Kind == table.Numeric {
				// Correlated with ingest time plus noise.
				row[c] = row[col("ingest_date")]*100 + int64(rng.Intn(5000))
				if row[c] > 99_999 {
					row[c] = 99_999
				}
			} else {
				row[c] = int64(zipfCat.Uint64())
			}
		}
		tbl.AppendRow(row)
	}
	return tbl
}

// errorLogQueries draws literals from data rows so queries correlate with
// the data, then varies shape: point lookups, IN sets, date ranges, and
// version-prefix (LIKE-style) filters. narrow controls selectivity: true
// reproduces ErrorLog-Int (≈0.0005%), false ErrorLog-Ext (≈0.07%).
func errorLogQueries(tbl *table.Table, n int, narrow bool, rng *rand.Rand) []expr.Query {
	s := tbl.Schema
	col := s.MustCol
	var out []expr.Query
	row := make([]int64, s.NumCols())
	cand := make([]int64, s.NumCols())
	verCol := col("os_version")
	for i := 0; i < n; i++ {
		row = tbl.Row(rng.Intn(tbl.N), row)
		if narrow {
			// Investigations target problematic (rare) configurations:
			// bias the seed row toward tail versions by keeping the
			// rarest of several candidates (higher Zipf code = rarer).
			for k := 0; k < 8; k++ {
				cand = tbl.Row(rng.Intn(tbl.N), cand)
				if cand[verCol] > row[verCol] {
					row, cand = cand, row
				}
			}
		}
		name := fmt.Sprintf("el%04d", i)
		switch i % 4 {
		case 0:
			// Exact investigation: event type + version + build window.
			span := int64(30)
			if !narrow {
				span = 80
			}
			q := expr.AndQ(name,
				expr.Pred{Col: col("event_type"), Op: expr.Eq, Literal: row[col("event_type")]},
				expr.Pred{Col: col("os_version"), Op: expr.Eq, Literal: row[col("os_version")]},
				expr.Pred{Col: col("os_build_date"), Op: expr.Ge, Literal: row[col("os_build_date")] - span},
				expr.Pred{Col: col("os_build_date"), Op: expr.Le, Literal: row[col("os_build_date")] + span})
			if narrow {
				q.Root.Children = append(q.Root.Children, expr.NewPred(
					expr.Pred{Col: col("app_id"), Op: expr.Eq, Literal: row[col("app_id")]}))
			}
			out = append(out, q)
		case 1:
			// Dashboard: IN over event types + validity + ingest window.
			e1 := row[col("event_type")]
			e2 := int64(rng.Intn(8))
			lo := row[col("ingest_date")]
			span := int64(6) // hours
			if !narrow {
				span = 24
			}
			q := expr.AndQ(name,
				expr.NewIn(col("event_type"), []int64{e1, e2}),
				expr.Pred{Col: col("validity"), Op: expr.Eq, Literal: 1},
				expr.Pred{Col: col("ingest_date"), Op: expr.Ge, Literal: lo},
				expr.Pred{Col: col("ingest_date"), Op: expr.Lt, Literal: lo + span})
			if narrow {
				q.Root.Children = append(q.Root.Children, expr.NewPred(
					expr.Pred{Col: col("os_version"), Op: expr.Eq, Literal: row[col("os_version")]}))
			}
			out = append(out, q)
		case 2:
			// LIKE '10.0.<major>.%' over version strings: the dictionary
			// codes of a shared prefix form a contiguous run of 16.
			base := (row[col("os_version")] / 16) * 16
			vals := make([]int64, 0, 16)
			dom := s.Cols[col("os_version")].Dom
			for v := base; v < base+16 && v < dom; v++ {
				vals = append(vals, v)
			}
			q := expr.AndQ(name,
				expr.NewIn(col("os_version"), vals),
				expr.Pred{Col: col("event_type"), Op: expr.Eq, Literal: row[col("event_type")]})
			if !narrow {
				q.Root.Children = append(q.Root.Children, expr.NewPred(
					expr.NewIn(col("app_id"), []int64{row[col("app_id")], row[col("app_id")] + 1})))
			}
			if narrow {
				q.Root.Children = append(q.Root.Children,
					expr.NewPred(expr.Pred{Col: col("app_id"), Op: expr.Eq, Literal: row[col("app_id")]}),
					expr.NewPred(expr.Pred{Col: col("os_build_date"), Op: expr.Ge, Literal: row[col("os_build_date")] - 15}),
					expr.NewPred(expr.Pred{Col: col("os_build_date"), Op: expr.Le, Literal: row[col("os_build_date")] + 15}))
			}
			out = append(out, q)
		default:
			// App drill-down: app IN (...) + build-date range.
			a1 := row[col("app_id")]
			vals := []int64{a1}
			if !narrow {
				dom := s.Cols[col("app_id")].Dom
				vals = append(vals, (a1+1)%dom)
			}
			span := int64(60)
			if !narrow {
				span = 120
			}
			q := expr.AndQ(name,
				expr.NewIn(col("app_id"), vals),
				expr.Pred{Col: col("os_build_date"), Op: expr.Ge, Literal: row[col("os_build_date")] - span},
				expr.Pred{Col: col("os_build_date"), Op: expr.Le, Literal: row[col("os_build_date")] + span})
			if narrow {
				q.Root.Children = append(q.Root.Children,
					expr.NewPred(expr.Pred{Col: col("event_type"), Op: expr.Eq, Literal: row[col("event_type")]}),
					expr.NewPred(expr.Pred{Col: col("os_version"), Op: expr.Eq, Literal: row[verCol]}))
			}
			out = append(out, q)
		}
	}
	return out
}

// ErrorLogInt generates the ErrorLog-Int equivalent: 50 columns, small
// categorical domains, one-week ingest window, ultra-selective queries.
func ErrorLogInt(cfg ErrorLogConfig) *Spec {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := errorLogSchema("errlog-int", 50, 64, 7, 192)
	tbl := errorLogGen(schema, cfg.Rows, 7, 192, 64, rng)
	queries := errorLogQueries(tbl, cfg.NumQueries, true, rng)
	return &Spec{Name: "errlog-int", Table: tbl, Queries: queries, Cuts: ExtractCuts(queries)}
}

// ErrorLogExt generates the ErrorLog-Ext equivalent: 58 columns, a ~3600
// value categorical domain, 15-day window, moderately selective queries.
func ErrorLogExt(cfg ErrorLogConfig) *Spec {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := errorLogSchema("errlog-ext", 58, 3600, 15, 192)
	tbl := errorLogGen(schema, cfg.Rows, 15, 192, 3600, rng)
	queries := errorLogQueries(tbl, cfg.NumQueries, false, rng)
	return &Spec{Name: "errlog-ext", Table: tbl, Queries: queries, Cuts: ExtractCuts(queries)}
}

// IngestColumn returns the column the range baseline partitions on (the
// deployed default for the real workloads, Sec. 7.3).
func IngestColumn(s *table.Schema) int { return s.MustCol("ingest_date") }
