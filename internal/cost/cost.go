// Package cost implements the skipping cost model of Sec. 2.1: the
// per-block skip function S(P, q), the workload skipping capacity
// C(P) = Σ_i |P_i| Σ_q S(P_i, q) (Equation 1), the logical access-percentage
// metric reported in Table 2, and the true-selectivity lower bound.
package cost

import (
	"sort"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/table"
)

// Evaluator scores semantic descriptions against a fixed workload. It is
// the inner loop of both constructors (greedy criterion and RL reward).
type Evaluator struct {
	Queries []expr.Query
}

// SkippedQueries returns the number of workload queries that provably skip
// a block with description d (S(P,q)=1).
func (e *Evaluator) SkippedQueries(d core.Desc) int {
	k := 0
	for _, q := range e.Queries {
		if !d.QueryMayMatch(q) {
			k++
		}
	}
	return k
}

// BlockSkip returns C(P_i) for a block of the given size: size × number of
// queries that skip it (Equation 1).
func (e *Evaluator) BlockSkip(d core.Desc, size int) int64 {
	return int64(size) * int64(e.SkippedQueries(d))
}

// Layout is a materialized partitioning: a per-row block assignment plus a
// per-block semantic description usable for skipping. Both qd-tree layouts
// (frozen leaf descriptions) and baseline layouts (plain min-max / SMA
// descriptions) fit this shape, so Table 2 compares all approaches with the
// same metric code.
type Layout struct {
	Name      string
	NumRows   int
	BIDs      []int       // per-row block ID
	Counts    []int       // per-block row count
	Descs     []core.Desc // per-block tightened description
	Tree      *core.Tree  // non-nil for qd-tree layouts (enables query routing)
	ExtraSkip func(block int, q expr.Query) bool
	// ExtraSkip, when non-nil, may prove additional blocks skippable (used
	// by the Bottom-Up baseline's feature-bitmap skipping).
}

// BuildDescs computes min-max + categorical-mask (+ advanced-cut)
// descriptions for an arbitrary row→block assignment. This is the SMA /
// zone-map metadata every layout gets (Sec. 8, "Partition Pruning").
func BuildDescs(tbl *table.Table, bids []int, numBlocks int, acs []expr.AdvCut) ([]core.Desc, []int) {
	counts := make([]int, numBlocks)
	descs := make([]core.Desc, numBlocks)
	for b := range descs {
		descs[b] = core.NewRootDesc(tbl.Schema, len(acs))
		// Start empty; widen with observed rows.
		for c := range descs[b].Lo {
			descs[b].Lo[c], descs[b].Hi[c] = 0, 0
		}
		for c := range descs[b].Masks {
			descs[b].Masks[c] = expr.NewBitset(descs[b].Masks[c].Len())
		}
		descs[b].AdvMay = expr.NewBitset(len(acs))
		descs[b].AdvMayNot = expr.NewBitset(len(acs))
	}
	first := make([]bool, numBlocks)
	ncols := tbl.Schema.NumCols()
	rowBuf := make([]int64, ncols)
	for r, b := range bids {
		counts[b]++
		d := &descs[b]
		if !first[b] {
			for c := 0; c < ncols; c++ {
				v := tbl.Cols[c][r]
				d.Lo[c], d.Hi[c] = v, v+1
			}
			first[b] = true
		} else {
			for c := 0; c < ncols; c++ {
				v := tbl.Cols[c][r]
				if v < d.Lo[c] {
					d.Lo[c] = v
				}
				if v+1 > d.Hi[c] {
					d.Hi[c] = v + 1
				}
			}
		}
		for c, m := range d.Masks {
			v := tbl.Cols[c][r]
			if v >= 0 && v < int64(m.Len()) {
				m.Set(int(v))
			}
		}
		if len(acs) > 0 {
			rowBuf = tbl.Row(r, rowBuf)
			for i, ac := range acs {
				if ac.Eval(rowBuf) {
					d.AdvMay.Set(i)
				} else {
					d.AdvMayNot.Set(i)
				}
			}
		}
	}
	return descs, counts
}

// NewLayout assembles a Layout from a row→block assignment, computing the
// per-block descriptions.
func NewLayout(name string, tbl *table.Table, bids []int, numBlocks int, acs []expr.AdvCut) *Layout {
	descs, counts := BuildDescs(tbl, bids, numBlocks, acs)
	return &Layout{Name: name, NumRows: tbl.N, BIDs: bids, Counts: counts, Descs: descs}
}

// FromTree routes the full table through a qd-tree, freezes the leaf
// descriptions (min-max tightening, Sec. 3.2), and returns the layout.
func FromTree(name string, t *core.Tree, tbl *table.Table) *Layout {
	bids := t.RouteTable(tbl)
	t.Freeze(tbl, bids)
	leaves := t.Leaves()
	descs := make([]core.Desc, len(leaves))
	counts := make([]int, len(leaves))
	for i, leaf := range leaves {
		descs[i] = leaf.Desc
		counts[i] = leaf.Count
	}
	return &Layout{Name: name, NumRows: tbl.N, BIDs: bids, Counts: counts, Descs: descs, Tree: t}
}

// NumBlocks returns the number of blocks in the layout.
func (l *Layout) NumBlocks() int { return len(l.Counts) }

// DisableDictionaryFiltering widens every block's categorical masks and
// advanced-cut bits to "anything possible", leaving only min-max interval
// (zone map) skipping. The deployed baselines of Sec. 7.3 maintain plain
// min-max metadata; the paper notes the commercial DBMS "lack[s]
// block-level indexes (dictionaries) for categorical fields".
func (l *Layout) DisableDictionaryFiltering() {
	for b := range l.Descs {
		d := &l.Descs[b]
		for c, m := range d.Masks {
			d.Masks[c] = expr.NewFullBitset(m.Len())
		}
		d.AdvMay = expr.NewFullBitset(d.AdvMay.Len())
		d.AdvMayNot = expr.NewFullBitset(d.AdvMayNot.Len())
	}
}

// BlocksFor returns the block IDs that must be scanned for query q: the
// blocks whose description intersects the query and that ExtraSkip (if
// any) cannot prove skippable.
func (l *Layout) BlocksFor(q expr.Query) []int {
	var out []int
	for b := range l.Descs {
		if l.Counts[b] == 0 {
			continue
		}
		if !l.Descs[b].QueryMayMatch(q) {
			continue
		}
		if l.ExtraSkip != nil && l.ExtraSkip(b, q) {
			continue
		}
		out = append(out, b)
	}
	return out
}

// AccessedTuples returns the number of tuples scanned for query q.
func (l *Layout) AccessedTuples(q expr.Query) int64 {
	var n int64
	for _, b := range l.BlocksFor(q) {
		n += int64(l.Counts[b])
	}
	return n
}

// PerQueryAccessed returns AccessedTuples for each query of the workload.
func (l *Layout) PerQueryAccessed(w []expr.Query) []int64 {
	out := make([]int64, len(w))
	for i, q := range w {
		out[i] = l.AccessedTuples(q)
	}
	return out
}

// AccessedFraction is the Table 2 metric: tuples accessed across the whole
// workload divided by |W|·|V| (1.0 = every query scans everything).
func (l *Layout) AccessedFraction(w []expr.Query) float64 {
	if len(w) == 0 || l.NumRows == 0 {
		return 0
	}
	var acc int64
	for _, q := range w {
		acc += l.AccessedTuples(q)
	}
	return float64(acc) / (float64(len(w)) * float64(l.NumRows))
}

// SkippedTuples returns C(P), the total tuples skipped across the workload
// (Equation 1 summed over blocks).
func (l *Layout) SkippedTuples(w []expr.Query) int64 {
	total := int64(l.NumRows) * int64(len(w))
	var acc int64
	for _, q := range w {
		acc += l.AccessedTuples(q)
	}
	return total - acc
}

// mayMatch evaluates SMA-only (zone map) pruning for query q against
// per-column value intervals supplied by interval(c) = (min, max), both
// inclusive. Categorical masks and advanced-cut bits are unavailable at
// this level (Sec. 7.5.1: the "no route" path lacks dictionaries), so
// KindAdv nodes are conservatively assumed to match.
func mayMatch(q expr.Query, interval func(c int) (lo, hi int64)) bool {
	if q.Root == nil {
		return true
	}
	var rec func(n *expr.Node) bool
	rec = func(n *expr.Node) bool {
		switch n.Kind {
		case expr.KindPred:
			p := n.Pred
			l, h := interval(p.Col) // inclusive [l, h]
			if l > h {
				return false
			}
			switch p.Op {
			case expr.Lt:
				return l < p.Literal
			case expr.Le:
				return l <= p.Literal
			case expr.Gt:
				return h > p.Literal
			case expr.Ge:
				return h >= p.Literal
			case expr.Eq:
				return p.Literal >= l && p.Literal <= h
			case expr.In:
				for _, v := range p.Set {
					if v >= l && v <= h {
						return true
					}
				}
				return false
			}
			return true
		case expr.KindAdv:
			return true // no advanced-cut metadata without routing
		case expr.KindAnd:
			for _, c := range n.Children {
				if !rec(c) {
					return false
				}
			}
			return true
		case expr.KindOr:
			for _, c := range n.Children {
				if rec(c) {
					return true
				}
			}
			return false
		}
		return true
	}
	return rec(q.Root)
}

// MinMaxMayMatch is SMA-only pruning over the Desc representation of
// per-column intervals: half-open [lo[c], hi[c]). An empty interval
// (lo >= hi) on a referenced column prunes the block.
func MinMaxMayMatch(lo, hi []int64, q expr.Query) bool {
	return mayMatch(q, func(c int) (int64, int64) { return lo[c], hi[c] - 1 })
}

// SMAMayMatch is SMA-only pruning over the blockstore catalog
// representation: inclusive [min[c], max[c]] per column.
func SMAMayMatch(min, max []int64, q expr.Query) bool {
	return mayMatch(q, func(c int) (int64, int64) { return min[c], max[c] })
}

// SMAFullyMatches reports whether the block's SMA metadata proves every
// row satisfies q — the dual of SMAMayMatch, used by the aggregate engine
// to serve COUNT/MIN/MAX of fully-selected blocks from zone maps without
// reading data. It is conservative: false means "not provable", never
// "no". Advanced-cut leaves are unprovable from per-column intervals. A
// nil root matches every row.
func SMAFullyMatches(min, max []int64, q expr.Query) bool {
	if q.Root == nil {
		return true
	}
	var rec func(n *expr.Node) bool
	rec = func(n *expr.Node) bool {
		switch n.Kind {
		case expr.KindPred:
			p := n.Pred
			lo, hi := min[p.Col], max[p.Col]
			switch p.Op {
			case expr.Lt:
				return hi < p.Literal
			case expr.Le:
				return hi <= p.Literal
			case expr.Gt:
				return lo > p.Literal
			case expr.Ge:
				return lo >= p.Literal
			case expr.Eq:
				return lo == p.Literal && hi == p.Literal
			case expr.In:
				// Every integer in [lo, hi] must be a set member. The set
				// is sorted and distinct, so it covers the interval iff lo
				// and hi both occur exactly hi-lo positions apart.
				span := uint64(hi) - uint64(lo) // lo <= hi always
				if span >= uint64(len(p.Set)) {
					return false
				}
				i := sort.Search(len(p.Set), func(k int) bool { return p.Set[k] >= lo })
				j := i + int(span)
				return i < len(p.Set) && p.Set[i] == lo && j < len(p.Set) && p.Set[j] == hi
			}
			return false
		case expr.KindAdv:
			return false // column-vs-column needs row values
		case expr.KindAnd:
			for _, c := range n.Children {
				if !rec(c) {
					return false
				}
			}
			return true
		case expr.KindOr:
			for _, c := range n.Children {
				if rec(c) {
					return true
				}
			}
			return false
		}
		return false
	}
	return rec(q.Root)
}

// SizeStats pairs the logical footprint of stored data (decoded, 8 bytes
// per value) with its encoded on-disk footprint. Block format v2 stores
// report these per store and per column; the engine profiles charge I/O
// ByteCost against encoded bytes while CPU RowCost stays a function of
// logical rows, so the compression ratio translates directly into scan
// speedup under the cost model.
type SizeStats struct {
	LogicalBytes int64
	EncodedBytes int64
}

// Add accumulates another stat into s.
func (s *SizeStats) Add(o SizeStats) {
	s.LogicalBytes += o.LogicalBytes
	s.EncodedBytes += o.EncodedBytes
}

// Ratio returns the compression ratio logical/encoded (1.0 = uncompressed,
// higher is better; 0 for an empty store).
func (s SizeStats) Ratio() float64 {
	if s.EncodedBytes == 0 {
		return 0
	}
	return float64(s.LogicalBytes) / float64(s.EncodedBytes)
}

// Selectivity returns the exact fraction of (query, row) matches — the
// lower bound on any layout's accessed fraction ("the true dataset
// selectivity ... itself a lower bound for the optimal solution", Sec. 5.2.4).
func Selectivity(tbl *table.Table, w []expr.Query, acs []expr.AdvCut) float64 {
	if tbl.N == 0 || len(w) == 0 {
		return 0
	}
	var matched int64
	row := make([]int64, tbl.Schema.NumCols())
	for r := 0; r < tbl.N; r++ {
		row = tbl.Row(r, row)
		for _, q := range w {
			if q.Eval(row, acs) {
				matched++
			}
		}
	}
	return float64(matched) / (float64(tbl.N) * float64(len(w)))
}

// PerQueryMatches returns, for each query, the exact number of matching
// rows (used for per-query selectivity lower bounds and result checks).
func PerQueryMatches(tbl *table.Table, w []expr.Query, acs []expr.AdvCut) []int64 {
	out := make([]int64, len(w))
	row := make([]int64, tbl.Schema.NumCols())
	for r := 0; r < tbl.N; r++ {
		row = tbl.Row(r, row)
		for i, q := range w {
			if q.Eval(row, acs) {
				out[i]++
			}
		}
	}
	return out
}
