package cost

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/table"
)

func fixture(seed int64) (*table.Table, []expr.Query) {
	schema := table.MustSchema([]table.Column{
		{Name: "v", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "k", Kind: table.Categorical, Dom: 4},
	})
	rng := rand.New(rand.NewSource(seed))
	tbl := table.New(schema, 1000)
	for i := 0; i < 1000; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(100)), int64(rng.Intn(4))})
	}
	queries := []expr.Query{
		expr.AndQ("low", expr.Pred{Col: 0, Op: expr.Lt, Literal: 25}),
		expr.AndQ("k2", expr.Pred{Col: 1, Op: expr.Eq, Literal: 2}),
		expr.AndQ("both",
			expr.Pred{Col: 0, Op: expr.Ge, Literal: 50},
			expr.Pred{Col: 1, Op: expr.Eq, Literal: 0}),
	}
	return tbl, queries
}

func TestBuildDescsSoundness(t *testing.T) {
	// Every row must satisfy its own block's description (min-max + mask).
	tbl, _ := fixture(1)
	bids := make([]int, tbl.N)
	for i := range bids {
		bids[i] = i % 4
	}
	descs, counts := BuildDescs(tbl, bids, 4, nil)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tbl.N {
		t.Fatalf("counts sum %d != %d", total, tbl.N)
	}
	row := make([]int64, 2)
	for r := 0; r < tbl.N; r++ {
		row = tbl.Row(r, row)
		d := descs[bids[r]]
		if row[0] < d.Lo[0] || row[0] >= d.Hi[0] {
			t.Fatalf("row %d outside block interval", r)
		}
		if !d.Masks[1].Get(int(row[1])) {
			t.Fatalf("row %d categorical value missing from mask", r)
		}
	}
}

func TestAccessedNeverBelowTrueMatches(t *testing.T) {
	// Skipping is conservative: blocks scanned for q must contain every
	// matching row, so AccessedTuples >= exact match count.
	tbl, queries := fixture(2)
	bids := make([]int, tbl.N)
	for i := range bids {
		bids[i] = (i / 250) % 4
	}
	layout := NewLayout("test", tbl, bids, 4, nil)
	matches := PerQueryMatches(tbl, queries, nil)
	for i, q := range queries {
		if acc := layout.AccessedTuples(q); acc < matches[i] {
			t.Errorf("%s: accessed %d < true matches %d", q.Name, acc, matches[i])
		}
	}
}

func TestAccessedFractionBounds(t *testing.T) {
	tbl, queries := fixture(3)
	// Single block: every query touches everything -> fraction 1.
	bids := make([]int, tbl.N)
	layout := NewLayout("one", tbl, bids, 1, nil)
	if f := layout.AccessedFraction(queries); f != 1.0 {
		t.Errorf("single block fraction = %.3f, want 1.0", f)
	}
	sel := Selectivity(tbl, queries, nil)
	if sel <= 0 || sel >= 1 {
		t.Fatalf("selectivity = %f out of range", sel)
	}
	// Selectivity is the lower bound of any layout's fraction.
	if f := layout.AccessedFraction(queries); f < sel {
		t.Error("fraction below selectivity lower bound")
	}
}

func TestSkippedPlusAccessedIsTotal(t *testing.T) {
	tbl, queries := fixture(4)
	bids := make([]int, tbl.N)
	for i := range bids {
		bids[i] = i % 8
	}
	layout := NewLayout("eight", tbl, bids, 8, nil)
	var acc int64
	for _, q := range queries {
		acc += layout.AccessedTuples(q)
	}
	want := int64(tbl.N)*int64(len(queries)) - acc
	if got := layout.SkippedTuples(queries); got != want {
		t.Errorf("SkippedTuples = %d, want %d", got, want)
	}
}

func TestFromTreeLayoutAgreesWithTreeRouting(t *testing.T) {
	tbl, queries := fixture(5)
	tree := core.NewTree(tbl.Schema, nil)
	l, _ := tree.Split(tree.Root, core.UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 50}))
	tree.Split(l, core.UnaryCut(expr.Pred{Col: 1, Op: expr.Eq, Literal: 2}))
	layout := FromTree("tree", tree, tbl)
	if layout.NumBlocks() != 3 {
		t.Fatalf("blocks = %d", layout.NumBlocks())
	}
	// The layout's BlocksFor must agree with the tree's QueryBlocks.
	for _, q := range queries {
		a := layout.BlocksFor(q)
		b := tree.QueryBlocks(q)
		if len(a) != len(b) {
			t.Fatalf("%s: layout %v vs tree %v", q.Name, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: layout %v vs tree %v", q.Name, a, b)
			}
		}
	}
}

func TestExtraSkipHonored(t *testing.T) {
	tbl, queries := fixture(6)
	bids := make([]int, tbl.N) // all rows in block 0
	layout := NewLayout("x", tbl, bids, 1, nil)
	layout.ExtraSkip = func(block int, q expr.Query) bool { return true }
	if got := layout.AccessedTuples(queries[0]); got != 0 {
		t.Errorf("ExtraSkip ignored: accessed %d", got)
	}
}

func TestEvaluatorSkippedQueries(t *testing.T) {
	tbl, queries := fixture(7)
	ev := &Evaluator{Queries: queries}
	d := core.NewRootDesc(tbl.Schema, 0)
	if ev.SkippedQueries(d) != 0 {
		t.Error("root desc must skip nothing")
	}
	// Restrict to v in [30,40): skips "low" (v<25) and "both" (v>=50).
	d.Lo[0], d.Hi[0] = 30, 40
	if got := ev.SkippedQueries(d); got != 2 {
		t.Errorf("SkippedQueries = %d, want 2", got)
	}
	if got := ev.BlockSkip(d, 10); got != 20 {
		t.Errorf("BlockSkip = %d, want 20", got)
	}
}

func TestEmptyWorkloadAndTable(t *testing.T) {
	tbl, _ := fixture(8)
	layout := NewLayout("x", tbl, make([]int, tbl.N), 1, nil)
	if layout.AccessedFraction(nil) != 0 {
		t.Error("empty workload fraction must be 0")
	}
	if Selectivity(tbl, nil, nil) != 0 {
		t.Error("empty workload selectivity must be 0")
	}
}

func TestMinMaxMayMatchCases(t *testing.T) {
	lo := []int64{10, 0}
	hi := []int64{20, 5} // col0 in [10,20), col1 in [0,5)
	cases := []struct {
		q    expr.Query
		want bool
	}{
		{expr.AndQ("lt-in", expr.Pred{Col: 0, Op: expr.Lt, Literal: 15}), true},
		{expr.AndQ("lt-out", expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}), false},
		{expr.AndQ("le-edge", expr.Pred{Col: 0, Op: expr.Le, Literal: 10}), true},
		{expr.AndQ("gt-in", expr.Pred{Col: 0, Op: expr.Gt, Literal: 18}), true},
		{expr.AndQ("gt-out", expr.Pred{Col: 0, Op: expr.Gt, Literal: 19}), false},
		{expr.AndQ("ge-edge", expr.Pred{Col: 0, Op: expr.Ge, Literal: 19}), true},
		{expr.AndQ("eq-in", expr.Pred{Col: 0, Op: expr.Eq, Literal: 12}), true},
		{expr.AndQ("eq-out", expr.Pred{Col: 0, Op: expr.Eq, Literal: 25}), false},
		{expr.AndQ("in-hit", expr.NewIn(0, []int64{1, 2, 15})), true},
		{expr.AndQ("in-miss", expr.NewIn(0, []int64{1, 2, 35})), false},
		{expr.Query{Name: "or", Root: expr.Or(
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 5}),
			expr.NewPred(expr.Pred{Col: 1, Op: expr.Lt, Literal: 3}))}, true},
		{expr.Query{Name: "adv", Root: expr.NewAdv(0)}, true}, // no AC metadata: conservative
		{expr.Query{Name: "nil"}, true},
	}
	for _, c := range cases {
		if got := MinMaxMayMatch(lo, hi, c.q); got != c.want {
			t.Errorf("%s: MinMaxMayMatch got %v, want %v", c.q.Name, got, c.want)
		}
		// The catalog form of the same intervals must agree exactly.
		min, max := []int64{10, 0}, []int64{19, 4}
		if got := SMAMayMatch(min, max, c.q); got != c.want {
			t.Errorf("%s: SMAMayMatch got %v, want %v", c.q.Name, got, c.want)
		}
	}
	// Empty interval prunes everything.
	if MinMaxMayMatch([]int64{5, 0}, []int64{5, 5}, cases[0].q) {
		t.Error("empty interval must prune")
	}
}

// TestSMAFullyMatchesSoundAndSharp: the subsumption test must never claim
// full match when some in-range value fails the predicate (soundness —
// checked exhaustively over the interval), and must recognize the plainly
// subsumed shapes the aggregate engine relies on (sharpness).
func TestSMAFullyMatchesSoundAndSharp(t *testing.T) {
	pred := func(p expr.Pred) expr.Query { return expr.Query{Root: expr.NewPred(p)} }
	cases := []struct {
		name     string
		min, max []int64
		q        expr.Query
		want     bool
	}{
		{"nil-root", []int64{0}, []int64{9}, expr.Query{}, true},
		{"lt-inside", []int64{0}, []int64{9}, pred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}), true},
		{"lt-boundary", []int64{0}, []int64{10}, pred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}), false},
		{"le-boundary", []int64{0}, []int64{10}, pred(expr.Pred{Col: 0, Op: expr.Le, Literal: 10}), true},
		{"ge-inside", []int64{5}, []int64{9}, pred(expr.Pred{Col: 0, Op: expr.Ge, Literal: 5}), true},
		{"ge-straddle", []int64{4}, []int64{9}, pred(expr.Pred{Col: 0, Op: expr.Ge, Literal: 5}), false},
		{"gt-boundary", []int64{5}, []int64{9}, pred(expr.Pred{Col: 0, Op: expr.Gt, Literal: 5}), false},
		{"eq-constant", []int64{7}, []int64{7}, pred(expr.Pred{Col: 0, Op: expr.Eq, Literal: 7}), true},
		{"eq-range", []int64{6}, []int64{7}, pred(expr.Pred{Col: 0, Op: expr.Eq, Literal: 7}), false},
		{"in-covering", []int64{2}, []int64{4}, pred(expr.NewIn(0, []int64{1, 2, 3, 4, 9})), true},
		{"in-gap", []int64{2}, []int64{4}, pred(expr.NewIn(0, []int64{2, 4})), false},
		{"in-empty", []int64{2}, []int64{2}, pred(expr.Pred{Col: 0, Op: expr.In}), false},
		{"adv-unprovable", []int64{0, 0}, []int64{0, 0}, expr.Query{Root: expr.NewAdv(0)}, false},
		{"and-both", []int64{5, 0}, []int64{9, 3}, expr.Query{Root: expr.And(
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Ge, Literal: 5}),
			expr.NewPred(expr.Pred{Col: 1, Op: expr.Lt, Literal: 4}))}, true},
		{"and-half", []int64{5, 0}, []int64{9, 4}, expr.Query{Root: expr.And(
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Ge, Literal: 5}),
			expr.NewPred(expr.Pred{Col: 1, Op: expr.Lt, Literal: 4}))}, false},
		{"or-one-side", []int64{8}, []int64{9}, expr.Query{Root: expr.Or(
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 2}),
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Ge, Literal: 8}))}, true},
		{"or-neither", []int64{1}, []int64{9}, expr.Query{Root: expr.Or(
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 2}),
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Ge, Literal: 8}))}, false},
	}
	acs := []expr.AdvCut{{Left: 0, Op: expr.Lt, Right: 1}}
	for _, c := range cases {
		if got := SMAFullyMatches(c.min, c.max, c.q); got != c.want {
			t.Errorf("%s: SMAFullyMatches = %v, want %v", c.name, got, c.want)
		}
		// Soundness: a claimed full match must hold for every in-range value
		// (single-column cases only; multi-column checked structurally above).
		if len(c.min) == 1 && SMAFullyMatches(c.min, c.max, c.q) {
			for v := c.min[0]; v <= c.max[0]; v++ {
				if !c.q.Eval([]int64{v}, acs) {
					t.Errorf("%s: claimed full match but value %d fails", c.name, v)
					break
				}
			}
		}
	}
}
