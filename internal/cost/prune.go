package cost

import "repro/internal/expr"

// PruneCause is the witness for one SMA pruning decision: the predicate
// that cannot match the block/shard interval. Op mirrors the query
// operator ("<", "<=", ">", ">=", "=", "IN"), or "empty" when the
// interval itself is empty (lo > hi) on a referenced column. Lo/Hi are
// the inclusive interval bounds the predicate was tested against.
//
// The explain logic mirrors mayMatch exactly: a non-nil cause is
// returned if and only if mayMatch would return false, so pruning and
// its explanation can never disagree.
type PruneCause struct {
	Col     int
	Op      string
	Literal int64
	Lo, Hi  int64
}

func opString(op expr.Op) string {
	switch op {
	case expr.Lt:
		return "<"
	case expr.Le:
		return "<="
	case expr.Gt:
		return ">"
	case expr.Ge:
		return ">="
	case expr.Eq:
		return "="
	case expr.In:
		return "IN"
	}
	return "?"
}

// pruneCause walks q like mayMatch and returns the first witness that
// forces a prune, or nil when the query may match.
func pruneCause(q expr.Query, interval func(c int) (lo, hi int64)) *PruneCause {
	if q.Root == nil {
		return nil
	}
	var rec func(n *expr.Node) *PruneCause
	rec = func(n *expr.Node) *PruneCause {
		switch n.Kind {
		case expr.KindPred:
			p := n.Pred
			l, h := interval(p.Col)
			if l > h {
				return &PruneCause{Col: p.Col, Op: "empty", Lo: l, Hi: h}
			}
			fail := &PruneCause{Col: p.Col, Op: opString(p.Op), Literal: p.Literal, Lo: l, Hi: h}
			switch p.Op {
			case expr.Lt:
				if l < p.Literal {
					return nil
				}
				return fail
			case expr.Le:
				if l <= p.Literal {
					return nil
				}
				return fail
			case expr.Gt:
				if h > p.Literal {
					return nil
				}
				return fail
			case expr.Ge:
				if h >= p.Literal {
					return nil
				}
				return fail
			case expr.Eq:
				if p.Literal >= l && p.Literal <= h {
					return nil
				}
				return fail
			case expr.In:
				for _, v := range p.Set {
					if v >= l && v <= h {
						return nil
					}
				}
				if len(p.Set) > 0 {
					fail.Literal = p.Set[0]
				}
				return fail
			}
			return nil
		case expr.KindAdv:
			return nil // conservatively matches, like mayMatch
		case expr.KindAnd:
			for _, c := range n.Children {
				if cause := rec(c); cause != nil {
					return cause
				}
			}
			return nil
		case expr.KindOr:
			var first *PruneCause
			for _, c := range n.Children {
				cause := rec(c)
				if cause == nil {
					return nil // one disjunct may match
				}
				if first == nil {
					first = cause
				}
			}
			return first
		}
		return nil
	}
	return rec(q.Root)
}

// SMAPruneCause explains why SMAMayMatch(min, max, q) is false; nil when
// the query may match the inclusive [min, max] zone map.
func SMAPruneCause(min, max []int64, q expr.Query) *PruneCause {
	return pruneCause(q, func(c int) (int64, int64) { return min[c], max[c] })
}

// MinMaxPruneCause explains why MinMaxMayMatch(lo, hi, q) is false over
// the half-open Desc interval representation; nil when it may match.
func MinMaxPruneCause(lo, hi []int64, q expr.Query) *PruneCause {
	return pruneCause(q, func(c int) (int64, int64) { return lo[c], hi[c] - 1 })
}
