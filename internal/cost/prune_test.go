package cost

import (
	"testing"

	"repro/internal/expr"
)

// TestSMAPruneCauseWitnesses pins the explain contract: SMAPruneCause
// returns a witness exactly when SMAMayMatch would prune, and the
// witness names the failing column, operator, and bound.
func TestSMAPruneCauseWitnesses(t *testing.T) {
	// Two-column zone map: col 0 ∈ [100, 200], col 1 ∈ [0, 9].
	min := []int64{100, 0}
	max := []int64{200, 9}

	pred := func(col int, op expr.Op, lit int64) expr.Query {
		return expr.Query{Root: expr.NewPred(expr.Pred{Col: col, Op: op, Literal: lit}), Name: "t"}
	}

	cases := []struct {
		name  string
		q     expr.Query
		prune bool
		op    string
		lit   int64
	}{
		{"lt-hit", pred(0, expr.Lt, 150), false, "", 0},
		{"lt-prune", pred(0, expr.Lt, 100), true, "<", 100},
		{"le-hit", pred(0, expr.Le, 100), false, "", 0},
		{"le-prune", pred(0, expr.Le, 99), true, "<=", 99},
		{"gt-hit", pred(0, expr.Gt, 150), false, "", 0},
		{"gt-prune", pred(0, expr.Gt, 200), true, ">", 200},
		{"ge-hit", pred(0, expr.Ge, 200), false, "", 0},
		{"ge-prune", pred(0, expr.Ge, 201), true, ">=", 201},
		{"eq-hit", pred(0, expr.Eq, 100), false, "", 0},
		{"eq-prune", pred(0, expr.Eq, 99), true, "=", 99},
		{"in-hit", expr.Query{Root: expr.NewPred(expr.Pred{Col: 1, Op: expr.In, Set: []int64{3, 50}})}, false, "", 0},
		{"in-prune", expr.Query{Root: expr.NewPred(expr.Pred{Col: 1, Op: expr.In, Set: []int64{50, 60}})}, true, "IN", 50},
		{"and-one-fails", expr.AndQ("t",
			expr.Pred{Col: 0, Op: expr.Ge, Literal: 150},
			expr.Pred{Col: 1, Op: expr.Gt, Literal: 9}), true, ">", 9},
		{"or-one-matches", expr.Query{Root: expr.Or(
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 100}),
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Gt, Literal: 150}))}, false, "", 0},
		{"or-all-fail", expr.Query{Root: expr.Or(
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 100}),
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Gt, Literal: 200}))}, true, "<", 100},
		{"adv-conservative", expr.Query{Root: expr.NewAdv(0)}, false, "", 0},
		{"empty-query", expr.Query{}, false, "", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cause := SMAPruneCause(min, max, tc.q)
			may := SMAMayMatch(min, max, tc.q)
			if (cause != nil) != tc.prune {
				t.Fatalf("cause = %+v, want prune=%v", cause, tc.prune)
			}
			if may == tc.prune {
				t.Fatalf("SMAPruneCause and SMAMayMatch disagree: cause=%+v may=%v", cause, may)
			}
			if cause != nil && (cause.Op != tc.op || cause.Literal != tc.lit) {
				t.Errorf("witness = %+v, want op=%q literal=%d", cause, tc.op, tc.lit)
			}
		})
	}
}

// TestPruneCauseEmptyInterval: an inverted interval (lo > hi) on a
// referenced column is its own witness kind.
func TestPruneCauseEmptyInterval(t *testing.T) {
	q := expr.AndQ("t", expr.Pred{Col: 0, Op: expr.Ge, Literal: 0})
	cause := SMAPruneCause([]int64{5}, []int64{1}, q)
	if cause == nil || cause.Op != "empty" || cause.Lo != 5 || cause.Hi != 1 {
		t.Fatalf("empty-interval witness = %+v", cause)
	}
}

// TestMinMaxPruneCause mirrors MinMaxMayMatch over the half-open Desc
// interval representation.
func TestMinMaxPruneCause(t *testing.T) {
	lo, hi := []int64{100}, []int64{200} // rows hold values in [100, 199]
	q := expr.AndQ("t", expr.Pred{Col: 0, Op: expr.Ge, Literal: 200})
	cause := MinMaxPruneCause(lo, hi, q)
	if cause == nil || cause.Hi != 199 {
		t.Fatalf("witness = %+v, want inclusive hi 199", cause)
	}
	if MinMaxMayMatch(lo, hi, q) {
		t.Fatal("MinMaxMayMatch disagrees with its witness")
	}
	if c := MinMaxPruneCause(lo, hi, expr.AndQ("t", expr.Pred{Col: 0, Op: expr.Ge, Literal: 199})); c != nil {
		t.Fatalf("boundary value should match: %+v", c)
	}
}
