// Package replicate implements the Sec. 6.3 two-tree replication
// extension: a second qd-tree over a full logical copy of the dataset,
// trained specifically on the queries that skip worst under the first
// tree. At query time each query is dispatched to whichever tree skips
// more for it; the construction can iterate (rebuild T1 against T2) until
// the combined objective stops improving.
package replicate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/greedy"
	"repro/internal/table"
)

// Options configure two-tree construction.
type Options struct {
	MinSize int
	Cuts    []core.Cut
	Queries []expr.Query
	// WorstFraction selects which queries T2 is optimized for: the
	// fraction of the workload with the highest per-query access under
	// T1 (default 0.5).
	WorstFraction float64
	// Iterations re-optimizes T1 against T2 and vice versa; the revised
	// objective is monotone non-decreasing so this converges (default 1 =
	// build T1, then T2, stop).
	Iterations int
	MaxLeaves  int
}

func (o *Options) defaults() {
	if o.WorstFraction == 0 {
		o.WorstFraction = 0.5
	}
	if o.Iterations == 0 {
		o.Iterations = 1
	}
}

// TwoTree is the deployed pair of layouts.
type TwoTree struct {
	T1, T2 *core.Tree
	L1, L2 *cost.Layout
	// PerQueryChoice[i] is 1 when T1 serves query i, 2 when T2 does.
	PerQueryChoice []int
}

// Build constructs the two trees over tbl.
func Build(tbl *table.Table, acs []expr.AdvCut, opt Options) (*TwoTree, error) {
	opt.defaults()
	if opt.MinSize < 1 {
		return nil, fmt.Errorf("replicate: MinSize must be >= 1")
	}
	base := greedy.Options{MinSize: opt.MinSize, Cuts: opt.Cuts, Queries: opt.Queries, MaxLeaves: opt.MaxLeaves}
	t1, err := greedy.Build(tbl, acs, base)
	if err != nil {
		return nil, err
	}
	l1 := cost.FromTree("twotree-T1", t1, tbl)

	var t2 *core.Tree
	var l2 *cost.Layout
	for iter := 0; iter < opt.Iterations; iter++ {
		// T2 targets the worst-skipped queries under the current T1.
		worst := worstQueries(l1, opt.Queries, opt.WorstFraction)
		t2, err = greedy.Build(tbl, acs, greedy.Options{
			MinSize: opt.MinSize, Cuts: opt.Cuts, Queries: worst, MaxLeaves: opt.MaxLeaves})
		if err != nil {
			return nil, err
		}
		l2 = cost.FromTree("twotree-T2", t2, tbl)
		if iter+1 < opt.Iterations {
			// Re-optimize T1 for the queries T2 serves poorly.
			worst1 := worstQueries(l2, opt.Queries, opt.WorstFraction)
			t1, err = greedy.Build(tbl, acs, greedy.Options{
				MinSize: opt.MinSize, Cuts: opt.Cuts, Queries: worst1, MaxLeaves: opt.MaxLeaves})
			if err != nil {
				return nil, err
			}
			l1 = cost.FromTree("twotree-T1", t1, tbl)
		}
	}

	tt := &TwoTree{T1: t1, T2: t2, L1: l1, L2: l2, PerQueryChoice: make([]int, len(opt.Queries))}
	for i, q := range opt.Queries {
		if l2 != nil && l2.AccessedTuples(q) < l1.AccessedTuples(q) {
			tt.PerQueryChoice[i] = 2
		} else {
			tt.PerQueryChoice[i] = 1
		}
	}
	return tt, nil
}

// worstQueries returns the ceil(frac·|W|) queries with the highest access
// counts under the layout, preserving workload order.
func worstQueries(l *cost.Layout, w []expr.Query, frac float64) []expr.Query {
	type qa struct {
		i   int
		acc int64
	}
	items := make([]qa, len(w))
	for i, q := range w {
		items[i] = qa{i, l.AccessedTuples(q)}
	}
	// Partial selection by simple sort (workloads are small).
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].acc > items[j-1].acc; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	k := int(frac*float64(len(w)) + 0.999)
	if k < 1 {
		k = 1
	}
	if k > len(items) {
		k = len(items)
	}
	chosen := items[:k]
	// Restore workload order for determinism.
	idx := make([]int, 0, k)
	for _, c := range chosen {
		idx = append(idx, c.i)
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := make([]expr.Query, 0, k)
	for _, i := range idx {
		out = append(out, w[i])
	}
	return out
}

// AccessedTuples dispatches q to the better tree (Sec. 6.3: "choose one of
// the two trees which maximizes the skippability for q").
func (tt *TwoTree) AccessedTuples(q expr.Query) int64 {
	a := tt.L1.AccessedTuples(q)
	if tt.L2 != nil {
		if b := tt.L2.AccessedTuples(q); b < a {
			return b
		}
	}
	return a
}

// AccessedFraction is the Table 2 metric under best-tree dispatch.
func (tt *TwoTree) AccessedFraction(w []expr.Query) float64 {
	if len(w) == 0 || tt.L1.NumRows == 0 {
		return 0
	}
	var acc int64
	for _, q := range w {
		acc += tt.AccessedTuples(q)
	}
	return float64(acc) / (float64(len(w)) * float64(tt.L1.NumRows))
}
