package replicate

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/greedy"
	"repro/internal/table"
	"repro/internal/workload"

	"math/rand"
)

func toCuts(ps []workload.Pred2Cut) []core.Cut {
	out := make([]core.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = core.AdvancedCut(p.Adv)
		} else {
			out[i] = core.UnaryCut(p.Pred)
		}
	}
	return out
}

// conflictSpec builds a workload with two query families that prefer
// incompatible layouts: family A filters on column a, family B on column
// b. One tree must compromise; two trees can each specialize.
func conflictSpec(n int, seed int64) (*table.Table, []expr.Query, []core.Cut) {
	rng := rand.New(rand.NewSource(seed))
	schema := table.MustSchema([]table.Column{
		{Name: "a", Kind: table.Numeric, Min: 0, Max: 999},
		{Name: "b", Kind: table.Numeric, Min: 0, Max: 999},
	})
	tbl := table.New(schema, n)
	for i := 0; i < n; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(1000)), int64(rng.Intn(1000))})
	}
	var queries []expr.Query
	var cuts []core.Cut
	for k := 0; k < 8; k++ {
		lo := int64(k * 125)
		queries = append(queries, expr.AndQ("a",
			expr.Pred{Col: 0, Op: expr.Ge, Literal: lo},
			expr.Pred{Col: 0, Op: expr.Lt, Literal: lo + 125}))
		queries = append(queries, expr.AndQ("b",
			expr.Pred{Col: 1, Op: expr.Ge, Literal: lo},
			expr.Pred{Col: 1, Op: expr.Lt, Literal: lo + 125}))
		cuts = append(cuts,
			core.UnaryCut(expr.Pred{Col: 0, Op: expr.Ge, Literal: lo}),
			core.UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: lo + 125}),
			core.UnaryCut(expr.Pred{Col: 1, Op: expr.Ge, Literal: lo}),
			core.UnaryCut(expr.Pred{Col: 1, Op: expr.Lt, Literal: lo + 125}))
	}
	return tbl, queries, cuts
}

func TestTwoTreeBeatsOneTree(t *testing.T) {
	tbl, queries, cuts := conflictSpec(20000, 1)
	single, err := greedy.Build(tbl, nil, greedy.Options{MinSize: 600, Cuts: cuts, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	oneFrac := cost.FromTree("one", single, tbl).AccessedFraction(queries)

	tt, err := Build(tbl, nil, Options{MinSize: 600, Cuts: cuts, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	twoFrac := tt.AccessedFraction(queries)
	if twoFrac >= oneFrac {
		t.Errorf("two-tree fraction %.4f >= one-tree %.4f; replication should help conflicting workloads", twoFrac, oneFrac)
	}
	// Both trees must actually serve some queries.
	served := map[int]int{}
	for _, c := range tt.PerQueryChoice {
		served[c]++
	}
	if served[1] == 0 || served[2] == 0 {
		t.Errorf("per-query dispatch degenerate: %v", served)
	}
}

func TestTwoTreeNeverWorseThanT1(t *testing.T) {
	tbl, queries, cuts := conflictSpec(8000, 2)
	tt, err := Build(tbl, nil, Options{MinSize: 400, Cuts: cuts, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if tt.AccessedTuples(q) > tt.L1.AccessedTuples(q) {
			t.Fatalf("dispatch chose a worse tree for %s", q.Name)
		}
	}
}

func TestTwoTreeIterationConverges(t *testing.T) {
	tbl, queries, cuts := conflictSpec(6000, 3)
	one, err := Build(tbl, nil, Options{MinSize: 300, Cuts: cuts, Queries: queries, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	three, err := Build(tbl, nil, Options{MinSize: 300, Cuts: cuts, Queries: queries, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Iterating must not be catastrophically worse (the objective is
	// monotone in the paper's scheme; our rebuild-from-scratch variant
	// should stay in the same ballpark).
	f1, f3 := one.AccessedFraction(queries), three.AccessedFraction(queries)
	if f3 > f1*1.5 {
		t.Errorf("iterated fraction %.4f much worse than single pass %.4f", f3, f1)
	}
}

func TestWorstQueriesSelection(t *testing.T) {
	tbl, queries, cuts := conflictSpec(4000, 4)
	tree, err := greedy.Build(tbl, nil, greedy.Options{MinSize: 400, Cuts: cuts, Queries: queries[:8]})
	if err != nil {
		t.Fatal(err)
	}
	l := cost.FromTree("t", tree, tbl)
	worst := worstQueries(l, queries, 0.25)
	if len(worst) != 4 {
		t.Fatalf("worst = %d queries, want 4", len(worst))
	}
	// Every selected query's access must be >= every unselected one's.
	minWorst := int64(1<<62 - 1)
	for _, q := range worst {
		if a := l.AccessedTuples(q); a < minWorst {
			minWorst = a
		}
	}
	selected := map[string]bool{}
	for _, q := range worst {
		selected[q.Name+q.String()] = true
	}
	for _, q := range queries {
		if selected[q.Name+q.String()] {
			continue
		}
		if l.AccessedTuples(q) > minWorst {
			t.Fatalf("unselected query with higher access than a selected one")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	tbl, queries, cuts := conflictSpec(100, 5)
	if _, err := Build(tbl, nil, Options{MinSize: 0, Cuts: cuts, Queries: queries}); err == nil {
		t.Error("MinSize 0 must error")
	}
}
