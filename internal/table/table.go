// Package table provides the columnar in-memory table substrate used by the
// qd-tree constructors, the block store, and the execution engine.
//
// Every value is stored as an int64. Numeric columns hold their natural
// integer encoding (dates as day numbers, fixed-point decimals as scaled
// integers); string and categorical columns are dictionary-encoded, matching
// the paper's treatment ("literals are dictionary-encoded as integers",
// Sec. 3). A column's domain is [0, Dom) for categoricals and
// [Min, Max] for numerics.
package table

import (
	"fmt"
	"math/rand"
)

// Kind classifies a column for qd-tree semantics.
type Kind int

const (
	// Numeric columns support range cuts; node descriptions track them as
	// hypercube intervals.
	Numeric Kind = iota
	// Categorical columns support =/IN cuts; node descriptions track them
	// as |Dom|-bit masks (paper Table 1).
	Categorical
)

// String returns the kind name.
func (k Kind) String() string {
	if k == Categorical {
		return "categorical"
	}
	return "numeric"
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
	// Dom is the dictionary size for categorical columns (values are in
	// [0, Dom)). Unused for numeric columns.
	Dom int64
	// Min and Max bound a numeric column's domain, inclusive. They define
	// the root hypercube interval [Min, Max+1).
	Min, Max int64
	// Dict maps categorical codes back to human-readable strings; may be
	// nil when codes are opaque.
	Dict []string
}

// Schema is an ordered set of columns with name lookup.
type Schema struct {
	Cols   []Column
	byName map[string]int
}

// NewSchema builds a schema and its name index. Column names must be unique.
func NewSchema(cols []Column) (*Schema, error) {
	s := &Schema{Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("table: duplicate column name %q", c.Name)
		}
		if c.Kind == Categorical && c.Dom <= 0 {
			return nil, fmt.Errorf("table: categorical column %q needs Dom > 0", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically known schemas.
func MustSchema(cols []Column) *Schema {
	s, err := NewSchema(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.Cols) }

// Col returns the ordinal of the named column, or -1 if absent.
func (s *Schema) Col(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustCol returns the ordinal of the named column and panics if absent.
func (s *Schema) MustCol(name string) int {
	i := s.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("table: no column %q", name))
	}
	return i
}

// Names returns the column names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Code returns the dictionary code of a categorical string value, or -1.
func (s *Schema) Code(col int, val string) int64 {
	for i, v := range s.Cols[col].Dict {
		if v == val {
			return int64(i)
		}
	}
	return -1
}

// Table is a column-major table of int64 values.
type Table struct {
	Schema *Schema
	Cols   [][]int64 // Cols[c][r]
	N      int       // row count
}

// New returns an empty table with capacity hint n.
func New(s *Schema, n int) *Table {
	cols := make([][]int64, s.NumCols())
	for i := range cols {
		cols[i] = make([]int64, 0, n)
	}
	return &Table{Schema: s, Cols: cols}
}

// FromColumns wraps pre-built column slices (not copied). All slices must
// have equal length.
func FromColumns(s *Schema, cols [][]int64) (*Table, error) {
	if len(cols) != s.NumCols() {
		return nil, fmt.Errorf("table: %d column slices for %d-column schema", len(cols), s.NumCols())
	}
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
	}
	for i, c := range cols {
		if len(c) != n {
			return nil, fmt.Errorf("table: column %d has %d rows, want %d", i, len(c), n)
		}
	}
	return &Table{Schema: s, Cols: cols, N: n}, nil
}

// AppendRow appends one row. The row length must equal the column count.
func (t *Table) AppendRow(row []int64) {
	for c := range t.Cols {
		t.Cols[c] = append(t.Cols[c], row[c])
	}
	t.N++
}

// Row copies row r into dst (allocating if dst is too small) and returns it.
func (t *Table) Row(r int, dst []int64) []int64 {
	if cap(dst) < len(t.Cols) {
		dst = make([]int64, len(t.Cols))
	}
	dst = dst[:len(t.Cols)]
	for c := range t.Cols {
		dst[c] = t.Cols[c][r]
	}
	return dst
}

// Select returns a new table containing the given row indexes.
func (t *Table) Select(rows []int) *Table {
	out := &Table{Schema: t.Schema, Cols: make([][]int64, len(t.Cols)), N: len(rows)}
	for c := range t.Cols {
		col := make([]int64, len(rows))
		src := t.Cols[c]
		for i, r := range rows {
			col[i] = src[r]
		}
		out.Cols[c] = col
	}
	return out
}

// Sample draws a uniform random sample of approximately rate*N rows (at
// least minRows if the table has that many) and returns it as a new table.
// The paper uses a 0.1%–1% sample to test cut legality (Sec. 5.2.1).
func (t *Table) Sample(rate float64, minRows int, rng *rand.Rand) *Table {
	want := int(float64(t.N) * rate)
	if want < minRows {
		want = minRows
	}
	if want >= t.N {
		return t
	}
	// Reservoir sampling keeps memory proportional to the sample.
	rows := make([]int, want)
	for i := 0; i < want; i++ {
		rows[i] = i
	}
	for i := want; i < t.N; i++ {
		j := rng.Intn(i + 1)
		if j < want {
			rows[j] = i
		}
	}
	return t.Select(rows)
}

// MinMax returns the observed minimum and maximum of column c over the
// given row subset (all rows when rows is nil). ok is false for an empty set.
func (t *Table) MinMax(c int, rows []int) (lo, hi int64, ok bool) {
	col := t.Cols[c]
	if rows == nil {
		if len(col) == 0 {
			return 0, 0, false
		}
		lo, hi = col[0], col[0]
		for _, v := range col[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi, true
	}
	if len(rows) == 0 {
		return 0, 0, false
	}
	lo, hi = col[rows[0]], col[rows[0]]
	for _, r := range rows[1:] {
		v := col[r]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}

// InferBounds sets each numeric column's Min/Max from the table contents.
// Generators that compute domains analytically may skip this.
func (t *Table) InferBounds() {
	for c := range t.Schema.Cols {
		if t.Schema.Cols[c].Kind != Numeric {
			continue
		}
		if lo, hi, ok := t.MinMax(c, nil); ok {
			t.Schema.Cols[c].Min, t.Schema.Cols[c].Max = lo, hi
		}
	}
}

// Concat appends all rows of other (same schema) to t.
func (t *Table) Concat(other *Table) {
	for c := range t.Cols {
		t.Cols[c] = append(t.Cols[c], other.Cols[c]...)
	}
	t.N += other.N
}
