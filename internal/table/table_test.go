package table

import (
	"math/rand"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema([]Column{
		{Name: "a", Kind: Numeric, Min: 0, Max: 99},
		{Name: "b", Kind: Categorical, Dom: 4, Dict: []string{"w", "x", "y", "z"}},
	})
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema([]Column{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate names must be rejected")
	}
	if _, err := NewSchema([]Column{{Name: ""}}); err == nil {
		t.Error("empty name must be rejected")
	}
	if _, err := NewSchema([]Column{{Name: "c", Kind: Categorical, Dom: 0}}); err == nil {
		t.Error("categorical with Dom=0 must be rejected")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	if s.Col("b") != 1 || s.Col("a") != 0 {
		t.Error("Col lookup wrong")
	}
	if s.Col("nope") != -1 {
		t.Error("missing column must return -1")
	}
	if got := s.Code(1, "y"); got != 2 {
		t.Errorf("Code = %d, want 2", got)
	}
	if got := s.Code(1, "missing"); got != -1 {
		t.Errorf("Code(missing) = %d, want -1", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestMustColPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCol on missing column did not panic")
		}
	}()
	testSchema(t).MustCol("nope")
}

func TestAppendAndRow(t *testing.T) {
	tbl := New(testSchema(t), 4)
	tbl.AppendRow([]int64{7, 1})
	tbl.AppendRow([]int64{9, 3})
	if tbl.N != 2 {
		t.Fatalf("N = %d", tbl.N)
	}
	row := tbl.Row(1, nil)
	if row[0] != 9 || row[1] != 3 {
		t.Errorf("row = %v", row)
	}
}

func TestFromColumnsValidates(t *testing.T) {
	s := testSchema(t)
	if _, err := FromColumns(s, [][]int64{{1, 2}}); err == nil {
		t.Error("wrong column count must error")
	}
	if _, err := FromColumns(s, [][]int64{{1, 2}, {1}}); err == nil {
		t.Error("ragged columns must error")
	}
	tbl, err := FromColumns(s, [][]int64{{1, 2}, {0, 3}})
	if err != nil || tbl.N != 2 {
		t.Fatalf("FromColumns: %v, N=%d", err, tbl.N)
	}
}

func TestSelect(t *testing.T) {
	tbl := New(testSchema(t), 4)
	for i := int64(0); i < 10; i++ {
		tbl.AppendRow([]int64{i, i % 4})
	}
	sub := tbl.Select([]int{9, 0, 5})
	if sub.N != 3 || sub.Cols[0][0] != 9 || sub.Cols[0][1] != 0 || sub.Cols[0][2] != 5 {
		t.Errorf("select wrong: %v", sub.Cols[0])
	}
}

func TestSampleSizeAndMembership(t *testing.T) {
	tbl := New(testSchema(t), 0)
	for i := int64(0); i < 1000; i++ {
		tbl.AppendRow([]int64{i % 100, i % 4})
	}
	rng := rand.New(rand.NewSource(42))
	s := tbl.Sample(0.1, 10, rng)
	if s.N != 100 {
		t.Fatalf("sample N = %d, want 100", s.N)
	}
	for i := 0; i < s.N; i++ {
		if s.Cols[0][i] < 0 || s.Cols[0][i] > 99 {
			t.Fatal("sampled value outside source domain")
		}
	}
	// minRows floor applies.
	s2 := tbl.Sample(0.001, 50, rng)
	if s2.N != 50 {
		t.Fatalf("minRows not honored: %d", s2.N)
	}
	// rate >= 1 returns the table itself.
	s3 := tbl.Sample(2.0, 1, rng)
	if s3.N != tbl.N {
		t.Fatal("oversample must return full table")
	}
}

func TestMinMax(t *testing.T) {
	tbl := New(testSchema(t), 0)
	for _, v := range []int64{5, 3, 9, 1, 7} {
		tbl.AppendRow([]int64{v, 0})
	}
	lo, hi, ok := tbl.MinMax(0, nil)
	if !ok || lo != 1 || hi != 9 {
		t.Errorf("MinMax all = %d..%d ok=%v", lo, hi, ok)
	}
	lo, hi, ok = tbl.MinMax(0, []int{0, 2})
	if !ok || lo != 5 || hi != 9 {
		t.Errorf("MinMax subset = %d..%d ok=%v", lo, hi, ok)
	}
	if _, _, ok := tbl.MinMax(0, []int{}); ok {
		t.Error("empty subset must report !ok")
	}
}

func TestInferBounds(t *testing.T) {
	s := MustSchema([]Column{{Name: "v", Kind: Numeric}})
	tbl := New(s, 0)
	for _, v := range []int64{-3, 10, 4} {
		tbl.AppendRow([]int64{v})
	}
	tbl.InferBounds()
	if tbl.Schema.Cols[0].Min != -3 || tbl.Schema.Cols[0].Max != 10 {
		t.Errorf("bounds = %d..%d", tbl.Schema.Cols[0].Min, tbl.Schema.Cols[0].Max)
	}
}

func TestConcat(t *testing.T) {
	a := New(testSchema(t), 0)
	a.AppendRow([]int64{1, 0})
	b := New(testSchema(t), 0)
	b.AppendRow([]int64{2, 1})
	b.AppendRow([]int64{3, 2})
	a.Concat(b)
	if a.N != 3 || a.Cols[0][2] != 3 {
		t.Errorf("concat wrong: N=%d", a.N)
	}
}
