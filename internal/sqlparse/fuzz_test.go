package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse hardens the SQL parser with two properties:
//
//  1. The parser never panics, whatever bytes arrive — malformed input
//     must surface as an error (the HTTP serving layer feeds it raw
//     client strings and maps errors to 400s).
//  2. Formatting is a fixpoint: any successfully parsed query, rendered
//     back to SQL with the schema's column names, must re-parse to a
//     query that renders identically. This pins the parser and
//     expr.Query.StringWith to one grammar, so logged/round-tripped query
//     text stays executable.
//
// Seeds come from the existing test-suite queries plus grammar corners
// (IN lists, BETWEEN, LIKE lowering, advanced cuts, dates, decimals,
// deep nesting).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT x FROM R WHERE (R.a < 10 OR R.b > 90) AND (mode IN ('AIR', 'RAIL'))",
		"a < 10",
		"a <= 10 AND b >= 5",
		"ship < commit_d",
		"a BETWEEN 5 AND 15",
		"mode = 'AIR REG'",
		"mode IN ('AIR', 'TRUCK', 'RAIL')",
		"mode LIKE 'AIR%'",
		"mode LIKE 'Z%'",
		"ship >= '1994-01-01' AND ship < '1995-01-01'",
		"a = 0.05",
		"a <> 3",
		"((((a < 1))))",
		"a in (1,2,3) or b in (4,5)",
		"SELECT * FROM t",
		"WHERE",
		"a <",
		"'unterminated",
		"a ! b",
		"mode = 'MISSING'",
		"b > -42",
		"a = 99999999999999999999999",
		strings.Repeat("(", 300) + "a<1" + strings.Repeat(")", 300),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		p := NewParser(testSchema())
		q, err := p.Parse(sql) // must not panic
		if err != nil {
			return
		}
		names := p.Schema.Names()
		rendered := q.StringWith(names, p.ACs)
		// LIKE patterns matching nothing lower to an empty IN set, which
		// has no SQL spelling; skip the fixpoint check for those.
		if strings.Contains(rendered, "IN ()") {
			return
		}
		p2 := NewParser(testSchema())
		q2, err := p2.Parse(rendered)
		if err != nil {
			t.Fatalf("round-trip parse failed\n  input:    %q\n  rendered: %q\n  error:    %v", sql, rendered, err)
		}
		if got := q2.StringWith(names, p2.ACs); got != rendered {
			t.Fatalf("format not a fixpoint\n  input:  %q\n  first:  %q\n  second: %q", sql, rendered, got)
		}
	})
}

// FuzzParseSelect extends the parser hardening to the full SELECT
// grammar:
//
//  1. ParseSelect never panics, whatever bytes arrive.
//  2. Formatting is a fixpoint: any successfully parsed statement,
//     rendered back to canonical SQL (group columns, then aggregates,
//     then WHERE, then GROUP BY), must re-parse to a statement that
//     renders identically.
//
// The maxNestingDepth guard covers the WHERE clause here exactly as it
// does in FuzzParse — the deep-paren seed pins that.
func FuzzParseSelect(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(*) FROM t",
		"SELECT COUNT(*) FROM t WHERE a < 10",
		"SELECT mode, COUNT(*), SUM(a) FROM t GROUP BY mode",
		"SELECT mode, a, SUM(b), AVG(ship), MIN(b), MAX(b), COUNT(commit_d) FROM logs WHERE (a < 10 OR b > 90) AND mode IN ('AIR', 'RAIL') GROUP BY mode, a",
		"SELECT SUM(a) FROM t WHERE ship < commit_d",
		"SELECT AVG(a) FROM t WHERE mode LIKE 'AIR%'",
		"SELECT COUNT(*) FROM t WHERE ship >= '1994-01-01' AND ship < '1995-01-01'",
		"SELECT SUM(a) FROM t WHERE a BETWEEN 0.05 AND 0.07",
		"select min(b) from t group by mode, mode",
		"SELECT * FROM t",
		"SELECT a FROM t",
		"SELECT FROM t",
		"SELECT COUNT( FROM t",
		"SELECT COUNT(*) FROM t GROUP BY",
		"SELECT COUNT(*) FROM t WHERE " + strings.Repeat("(", 300) + "a<1" + strings.Repeat(")", 300),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		p := NewParser(testSchema())
		aq, err := p.ParseSelect(sql) // must not panic
		if err != nil {
			return
		}
		names := p.Schema.Names()
		rendered := aq.StringWith(names, p.ACs)
		// LIKE patterns matching nothing lower to an empty IN set, which
		// has no SQL spelling; skip the fixpoint check for those.
		if strings.Contains(rendered, "IN ()") {
			return
		}
		p2 := NewParser(testSchema())
		aq2, err := p2.ParseSelect(rendered)
		if err != nil {
			t.Fatalf("round-trip parse failed\n  input:    %q\n  rendered: %q\n  error:    %v", sql, rendered, err)
		}
		if got := aq2.StringWith(names, p2.ACs); got != rendered {
			t.Fatalf("format not a fixpoint\n  input:  %q\n  first:  %q\n  second: %q", sql, rendered, got)
		}
	})
}

// TestParseSelectDepthLimit pins the nesting guard on the SELECT path.
func TestParseSelectDepthLimit(t *testing.T) {
	p := NewParser(testSchema())
	deep := "SELECT COUNT(*) FROM t WHERE " + strings.Repeat("(", 5000) + "a < 1" + strings.Repeat(")", 5000)
	if _, err := p.ParseSelect(deep); err == nil {
		t.Fatal("5000-deep nesting must be rejected")
	}
	ok := "SELECT COUNT(*) FROM t WHERE " + strings.Repeat("(", 50) + "a < 1" + strings.Repeat(")", 50)
	if _, err := p.ParseSelect(ok); err != nil {
		t.Fatalf("50-deep nesting must parse: %v", err)
	}
}

// TestParseDepthLimit pins the anti-stack-overflow guard the fuzzer
// motivated: pathological nesting errors out instead of crashing.
func TestParseDepthLimit(t *testing.T) {
	p := NewParser(testSchema())
	deep := strings.Repeat("(", 5000) + "a < 1" + strings.Repeat(")", 5000)
	if _, err := p.Parse(deep); err == nil {
		t.Fatal("5000-deep nesting must be rejected")
	}
	ok := strings.Repeat("(", 50) + "a < 1" + strings.Repeat(")", 50)
	if _, err := p.Parse(ok); err != nil {
		t.Fatalf("50-deep nesting must parse: %v", err)
	}
}

// TestRoundTripNamedQueries spot-checks the formatting fixpoint on
// realistic workload queries deterministically (the fuzz target checks it
// on arbitrary input).
func TestRoundTripNamedQueries(t *testing.T) {
	sqls := []string{
		"a < 10 AND b >= 3",
		"(a < 10 OR b > 90) AND mode IN ('AIR', 'RAIL')",
		"ship < commit_d AND mode = 'TRUCK'",
		"a BETWEEN 2 AND 8",
		"mode LIKE 'AIR%'",
	}
	for _, sql := range sqls {
		p := NewParser(testSchema())
		q, err := p.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		names := p.Schema.Names()
		rendered := q.StringWith(names, p.ACs)
		p2 := NewParser(testSchema())
		q2, err := p2.Parse(rendered)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", rendered, sql, err)
		}
		if got := q2.StringWith(names, p2.ACs); got != rendered {
			t.Errorf("%q: fixpoint broken: %q -> %q", sql, rendered, got)
		}
		if len(p2.ACs) != len(p.ACs) {
			t.Errorf("%q: advanced cuts changed across round-trip: %d -> %d", sql, len(p.ACs), len(p2.ACs))
		}
	}
}
