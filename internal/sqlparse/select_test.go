package sqlparse

import (
	"testing"

	"repro/internal/expr"
)

func mustParseSelect(t *testing.T, sql string) (expr.AggQuery, *Parser) {
	t.Helper()
	p := NewParser(testSchema())
	aq, err := p.ParseSelect(sql)
	if err != nil {
		t.Fatalf("ParseSelect %q: %v", sql, err)
	}
	return aq, p
}

func TestParseSelectCountStar(t *testing.T) {
	aq, _ := mustParseSelect(t, "SELECT COUNT(*) FROM t WHERE a < 10")
	if len(aq.Aggs) != 1 || aq.Aggs[0].Func != expr.AggCountStar {
		t.Fatalf("aggs = %+v", aq.Aggs)
	}
	if len(aq.GroupBy) != 0 {
		t.Fatalf("group by = %v", aq.GroupBy)
	}
	if aq.Filter.Root == nil {
		t.Fatal("filter missing")
	}
	if !aq.Filter.Eval([]int64{5, 0, 0, 0, 0}, nil) {
		t.Error("a=5 must pass the filter")
	}
}

func TestParseSelectFullGrammar(t *testing.T) {
	aq, _ := mustParseSelect(t,
		"SELECT mode, COUNT(*), SUM(a), MIN(b), MAX(b), AVG(ship), COUNT(a) FROM logs WHERE a >= 3 AND mode IN ('AIR', 'RAIL') GROUP BY mode")
	wantFuncs := []expr.AggFunc{expr.AggCountStar, expr.AggSum, expr.AggMin, expr.AggMax, expr.AggAvg, expr.AggCount}
	if len(aq.Aggs) != len(wantFuncs) {
		t.Fatalf("aggs = %+v", aq.Aggs)
	}
	for i, f := range wantFuncs {
		if aq.Aggs[i].Func != f {
			t.Errorf("agg %d func = %v, want %v", i, aq.Aggs[i].Func, f)
		}
	}
	if aq.Aggs[1].Col != 0 || aq.Aggs[2].Col != 1 || aq.Aggs[4].Col != 2 {
		t.Errorf("agg columns wrong: %+v", aq.Aggs)
	}
	if len(aq.GroupBy) != 1 || aq.GroupBy[0] != 4 {
		t.Errorf("group by = %v, want [4]", aq.GroupBy)
	}
}

func TestParseSelectNoWhere(t *testing.T) {
	aq, _ := mustParseSelect(t, "SELECT SUM(a) FROM t")
	if aq.Filter.Root != nil {
		t.Error("no WHERE must leave a nil filter root (full scan)")
	}
	aq2, _ := mustParseSelect(t, "SELECT mode, COUNT(*) FROM t GROUP BY mode")
	if aq2.Filter.Root != nil || len(aq2.GroupBy) != 1 {
		t.Errorf("parsed %+v", aq2)
	}
}

func TestParseSelectMultiGroup(t *testing.T) {
	aq, _ := mustParseSelect(t, "SELECT mode, a, COUNT(*) FROM t GROUP BY mode, a")
	if len(aq.GroupBy) != 2 || aq.GroupBy[0] != 4 || aq.GroupBy[1] != 0 {
		t.Errorf("group by = %v", aq.GroupBy)
	}
	// Duplicate GROUP BY columns collapse.
	aq2, _ := mustParseSelect(t, "SELECT COUNT(*) FROM t GROUP BY mode, mode")
	if len(aq2.GroupBy) != 1 {
		t.Errorf("duplicate group cols must collapse: %v", aq2.GroupBy)
	}
}

func TestParseSelectCaseInsensitive(t *testing.T) {
	aq, _ := mustParseSelect(t, "select count(*), sum(a) from t where b > 1 group by mode")
	if len(aq.Aggs) != 2 || len(aq.GroupBy) != 1 {
		t.Fatalf("parsed %+v", aq)
	}
}

func TestParseSelectRendersAsFixpoint(t *testing.T) {
	sqls := []string{
		"SELECT COUNT(*) FROM t WHERE a < 10",
		"SELECT mode, SUM(a), AVG(b) FROM t WHERE ship < commit_d GROUP BY mode",
		"SELECT SUM(a) FROM t",
		"SELECT mode, a, COUNT(*), MIN(ship) FROM t WHERE mode IN ('AIR', 'RAIL') GROUP BY mode, a",
	}
	for _, sql := range sqls {
		p := NewParser(testSchema())
		aq, err := p.ParseSelect(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		names := p.Schema.Names()
		rendered := aq.StringWith(names, p.ACs)
		p2 := NewParser(testSchema())
		aq2, err := p2.ParseSelect(rendered)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", rendered, sql, err)
		}
		if got := aq2.StringWith(names, p2.ACs); got != rendered {
			t.Errorf("%q: fixpoint broken: %q -> %q", sql, rendered, got)
		}
	}
}

func TestParseSelectErrors(t *testing.T) {
	bad := []string{
		"SELECT FROM t",                            // empty select list
		"SELECT COUNT(*) WHERE a < 1",              // missing FROM
		"SELECT COUNT(*) FROM",                     // missing table
		"SELECT a FROM t",                          // bare column without GROUP BY
		"SELECT a, COUNT(*) FROM t GROUP BY mode",  // bare column not in GROUP BY
		"SELECT MEDIAN(a) FROM t",                  // unknown aggregate
		"SELECT SUM(*) FROM t",                     // * only valid in COUNT
		"SELECT SUM(zzz) FROM t",                   // unknown aggregate column
		"SELECT COUNT(*) FROM t GROUP BY zzz",      // unknown group column
		"SELECT COUNT(*) FROM t GROUP mode",        // GROUP without BY
		"SELECT COUNT(*) FROM t WHERE",             // empty filter
		"SELECT COUNT(*) FROM t GROUP BY mode foo", // trailing input
		"SELECT COUNT(*), FROM t",                  // dangling comma
		"COUNT(*) FROM t",                          // missing SELECT
		"SELECT * FROM t",                          // bare * is not an item
	}
	for _, sql := range bad {
		p := NewParser(testSchema())
		if _, err := p.ParseSelect(sql); err == nil {
			t.Errorf("%q: expected error", sql)
		}
	}
}

func TestParseSelectAdvancedCutShared(t *testing.T) {
	p := NewParser(testSchema())
	if _, err := p.ParseSelect("SELECT COUNT(*) FROM t WHERE ship < commit_d"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ParseSelect("SELECT SUM(a) FROM t WHERE ship < commit_d AND a < 5"); err != nil {
		t.Fatal(err)
	}
	if len(p.ACs) != 1 {
		t.Fatalf("ACs = %d, want 1 (interned across statements)", len(p.ACs))
	}
}

func TestParseSelectMany(t *testing.T) {
	p := NewParser(testSchema())
	aqs, err := p.ParseSelectMany([]string{
		"SELECT COUNT(*) FROM t WHERE a < 5",
		"SELECT mode, SUM(b) FROM t GROUP BY mode",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(aqs) != 2 || aqs[0].Name != "q0" || aqs[1].Name != "q1" {
		t.Fatalf("ParseSelectMany = %+v", aqs)
	}
	if _, err := p.ParseSelectMany([]string{"SELECT COUNT(*) FROM t", "garbage"}); err == nil {
		t.Error("bad workload must error with query index")
	}
}

func TestParseSelectNeedsColumn(t *testing.T) {
	aq, _ := mustParseSelect(t, "SELECT COUNT(*), COUNT(b), SUM(a) FROM t")
	// COUNT(*) and COUNT(col) only count selected rows; SUM reads data.
	if aq.Aggs[0].NeedsColumn() || aq.Aggs[1].NeedsColumn() || !aq.Aggs[2].NeedsColumn() {
		t.Fatalf("NeedsColumn flags wrong: %+v", aq.Aggs)
	}
}
