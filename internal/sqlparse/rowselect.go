package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/table"
)

// ParseRowSelect parses a row-returning SELECT statement:
//
//	SELECT <col> [, <col>]... FROM <t1> [JOIN <t2> ON <t1>.<k> = <t2>.<k>]
//	    [WHERE <filter>] [ORDER BY <col> [ASC|DESC] [, ...]] [LIMIT <k>]
//
// The projection is a list of bare columns (aggregates belong to
// ParseSelect; SELECT * stays on the legacy filter surface). ORDER BY
// columns must appear in the SELECT list — the executor's sort
// comparator is a pure function of the output tuple. LIMIT takes a
// positive integer.
//
// Joins bind two tables. When the parser's Tables map is nil, every
// FROM-clause name binds the single Schema and the join is a self-join
// with the FROM names acting as positional aliases (they must differ).
// A join's WHERE clause must split into conjuncts that each touch one
// side only; OR across sides and column-vs-column predicates are
// rejected (the ON clause is the only cross-table comparison).
func (p *Parser) ParseRowSelect(sql string) (expr.RowStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return expr.RowStmt{}, err
	}
	ps := &parseState{p: p, toks: toks}
	if !isKeyword(ps.cur(), "SELECT") {
		return expr.RowStmt{}, fmt.Errorf("sqlparse: row statement must start with SELECT, got %q at %d", ps.cur().text, ps.cur().pos)
	}
	ps.next()

	// Collect projection tokens first; they resolve after FROM, once we
	// know whether this is a join (qualifiers need both schemas).
	var proj []token
	for {
		t := ps.next()
		if t.kind == tokStar {
			return expr.RowStmt{}, fmt.Errorf("sqlparse: SELECT * is not a row query (use the filter surface) at %d", t.pos)
		}
		if t.kind != tokIdent {
			return expr.RowStmt{}, fmt.Errorf("sqlparse: expected column name at %d, got %q", t.pos, t.text)
		}
		if isKeyword(t, "FROM") {
			return expr.RowStmt{}, fmt.Errorf("sqlparse: empty SELECT list at %d", t.pos)
		}
		if ps.cur().kind == tokLParen {
			return expr.RowStmt{}, fmt.Errorf("sqlparse: aggregate %q in row SELECT (use an aggregation statement) at %d", t.text, t.pos)
		}
		proj = append(proj, t)
		if ps.cur().kind == tokComma {
			ps.next()
			continue
		}
		break
	}
	if !isKeyword(ps.cur(), "FROM") {
		return expr.RowStmt{}, fmt.Errorf("sqlparse: expected FROM at %d, got %q", ps.cur().pos, ps.cur().text)
	}
	ps.next()
	leftTok, err := ps.expect(tokIdent, "table name")
	if err != nil {
		return expr.RowStmt{}, err
	}
	if !isKeyword(ps.cur(), "JOIN") {
		return p.finishRowQuery(ps, proj)
	}
	ps.next()
	rightTok, err := ps.expect(tokIdent, "join table name")
	if err != nil {
		return expr.RowStmt{}, err
	}
	return p.finishJoinQuery(ps, proj, leftTok, rightTok)
}

// finishRowQuery parses the single-table tail (WHERE/ORDER BY/LIMIT)
// and resolves the projection against the base schema.
func (p *Parser) finishRowQuery(ps *parseState, proj []token) (expr.RowStmt, error) {
	rq := &expr.RowQuery{}
	for _, t := range proj {
		col := p.resolveCol(t.text)
		if col < 0 {
			return expr.RowStmt{}, fmt.Errorf("sqlparse: unknown column %q at %d", t.text, t.pos)
		}
		rq.Cols = append(rq.Cols, col)
	}
	if isKeyword(ps.cur(), "WHERE") {
		ps.next()
		root, err := ps.parseOr()
		if err != nil {
			return expr.RowStmt{}, err
		}
		rq.Filter = expr.Query{Root: root}
	}
	order, limit, err := ps.parseOrderLimit(func(t token) (int, error) {
		col := p.resolveCol(t.text)
		if col < 0 {
			return -1, fmt.Errorf("sqlparse: unknown column %q at %d", t.text, t.pos)
		}
		for i, c := range rq.Cols {
			if c == col {
				return i, nil
			}
		}
		return -1, fmt.Errorf("sqlparse: ORDER BY column %q is not in the SELECT list at %d", t.text, t.pos)
	})
	if err != nil {
		return expr.RowStmt{}, err
	}
	rq.OrderBy, rq.Limit = order, limit
	if ps.cur().kind != tokEOF {
		return expr.RowStmt{}, fmt.Errorf("sqlparse: trailing input at %d: %q", ps.cur().pos, ps.cur().text)
	}
	return expr.RowStmt{Row: rq}, nil
}

// schemaFor binds a FROM-clause table name to a schema: through the
// Tables map when set, else the parser's single Schema.
func (p *Parser) schemaFor(t token) (*table.Schema, error) {
	if p.Tables == nil {
		return p.Schema, nil
	}
	if s, ok := p.Tables[t.text]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("sqlparse: unknown table %q at %d", t.text, t.pos)
}

// finishJoinQuery parses "ON a = b [WHERE ...] [ORDER BY ...] [LIMIT k]".
func (p *Parser) finishJoinQuery(ps *parseState, proj []token, leftTok, rightTok token) (expr.RowStmt, error) {
	if leftTok.text == rightTok.text {
		return expr.RowStmt{}, fmt.Errorf("sqlparse: join sides need distinct names (got %q twice) at %d", rightTok.text, rightTok.pos)
	}
	ls, err := p.schemaFor(leftTok)
	if err != nil {
		return expr.RowStmt{}, err
	}
	rs, err := p.schemaFor(rightTok)
	if err != nil {
		return expr.RowStmt{}, err
	}
	jc := &joinCtx{ps: ps, left: leftTok.text, right: rightTok.text, ls: ls, rs: rs}
	jq := &expr.JoinQuery{LeftTable: leftTok.text, RightTable: rightTok.text}
	for _, t := range proj {
		cr, err := jc.resolve(t)
		if err != nil {
			return expr.RowStmt{}, err
		}
		jq.Cols = append(jq.Cols, cr)
	}
	if !isKeyword(ps.cur(), "ON") {
		return expr.RowStmt{}, fmt.Errorf("sqlparse: expected ON at %d, got %q", ps.cur().pos, ps.cur().text)
	}
	ps.next()
	kaTok, err := ps.expect(tokIdent, "join key")
	if err != nil {
		return expr.RowStmt{}, err
	}
	ka, err := jc.resolve(kaTok)
	if err != nil {
		return expr.RowStmt{}, err
	}
	eq := ps.next()
	if eq.kind != tokOp || eq.text != "=" {
		return expr.RowStmt{}, fmt.Errorf("sqlparse: join ON supports equality only, got %q at %d", eq.text, eq.pos)
	}
	kbTok, err := ps.expect(tokIdent, "join key")
	if err != nil {
		return expr.RowStmt{}, err
	}
	kb, err := jc.resolve(kbTok)
	if err != nil {
		return expr.RowStmt{}, err
	}
	switch {
	case ka.Side == 0 && kb.Side == 1:
		jq.LeftKey, jq.RightKey = ka.Col, kb.Col
	case ka.Side == 1 && kb.Side == 0:
		jq.LeftKey, jq.RightKey = kb.Col, ka.Col
	default:
		return expr.RowStmt{}, fmt.Errorf("sqlparse: join ON must compare one column from each side at %d", kaTok.pos)
	}
	if isKeyword(ps.cur(), "WHERE") {
		ps.next()
		lf, rf, err := jc.parseWhere()
		if err != nil {
			return expr.RowStmt{}, err
		}
		jq.LeftFilter, jq.RightFilter = lf, rf
	}
	order, limit, err := ps.parseOrderLimit(func(t token) (int, error) {
		cr, err := jc.resolve(t)
		if err != nil {
			return -1, err
		}
		for i, c := range jq.Cols {
			if c == cr {
				return i, nil
			}
		}
		return -1, fmt.Errorf("sqlparse: ORDER BY column %q is not in the SELECT list at %d", t.text, t.pos)
	})
	if err != nil {
		return expr.RowStmt{}, err
	}
	jq.OrderBy, jq.Limit = order, limit
	if ps.cur().kind != tokEOF {
		return expr.RowStmt{}, fmt.Errorf("sqlparse: trailing input at %d: %q", ps.cur().pos, ps.cur().text)
	}
	return expr.RowStmt{Join: jq}, nil
}

// parseOrderLimit parses the optional ORDER BY and LIMIT tail. resolve
// maps an ORDER BY column token to its SELECT-list position. Repeated
// keys de-duplicate (keeping the first) so rendering is a fixpoint.
func (ps *parseState) parseOrderLimit(resolve func(token) (int, error)) ([]expr.OrderKey, int, error) {
	var order []expr.OrderKey
	if isKeyword(ps.cur(), "ORDER") {
		ps.next()
		if !isKeyword(ps.cur(), "BY") {
			return nil, 0, fmt.Errorf("sqlparse: ORDER must be followed by BY at %d", ps.cur().pos)
		}
		ps.next()
		seen := make(map[int]bool)
		for {
			t, err := ps.expect(tokIdent, "ORDER BY column")
			if err != nil {
				return nil, 0, err
			}
			pos, err := resolve(t)
			if err != nil {
				return nil, 0, err
			}
			desc := false
			if isKeyword(ps.cur(), "ASC") {
				ps.next()
			} else if isKeyword(ps.cur(), "DESC") {
				ps.next()
				desc = true
			}
			if !seen[pos] {
				seen[pos] = true
				order = append(order, expr.OrderKey{Pos: pos, Desc: desc})
			}
			if ps.cur().kind != tokComma {
				break
			}
			ps.next()
		}
	}
	limit := 0
	if isKeyword(ps.cur(), "LIMIT") {
		ps.next()
		t, err := ps.expect(tokNumber, "LIMIT count")
		if err != nil {
			return nil, 0, err
		}
		v, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil || v <= 0 {
			return nil, 0, fmt.Errorf("sqlparse: LIMIT needs a positive integer, got %q at %d", t.text, t.pos)
		}
		limit = int(v)
	}
	return order, limit, nil
}

// joinCtx resolves columns and parses per-side filters for a join.
type joinCtx struct {
	ps          *parseState
	left, right string
	ls, rs      *table.Schema
}

// resolve binds a (possibly qualified) column token to a side.
// Unqualified names must be unambiguous across the two sides; on a
// self-join every shared name is ambiguous, so qualifiers are required.
func (jc *joinCtx) resolve(t token) (expr.ColRef, error) {
	name := t.text
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		qual, base := name[:i], name[i+1:]
		switch qual {
		case jc.left:
			if c := jc.ls.Col(base); c >= 0 {
				return expr.ColRef{Side: 0, Col: c}, nil
			}
			return expr.ColRef{}, fmt.Errorf("sqlparse: unknown column %q in table %q at %d", base, jc.left, t.pos)
		case jc.right:
			if c := jc.rs.Col(base); c >= 0 {
				return expr.ColRef{Side: 1, Col: c}, nil
			}
			return expr.ColRef{}, fmt.Errorf("sqlparse: unknown column %q in table %q at %d", base, jc.right, t.pos)
		default:
			return expr.ColRef{}, fmt.Errorf("sqlparse: unknown table qualifier %q at %d", qual, t.pos)
		}
	}
	lc, rc := jc.ls.Col(name), jc.rs.Col(name)
	switch {
	case lc >= 0 && rc >= 0:
		return expr.ColRef{}, fmt.Errorf("sqlparse: ambiguous column %q (qualify with %s. or %s.) at %d", name, jc.left, jc.right, t.pos)
	case lc >= 0:
		return expr.ColRef{Side: 0, Col: lc}, nil
	case rc >= 0:
		return expr.ColRef{Side: 1, Col: rc}, nil
	}
	return expr.ColRef{}, fmt.Errorf("sqlparse: unknown column %q at %d", name, t.pos)
}

func (jc *joinCtx) schema(side int) *table.Schema {
	if side == 0 {
		return jc.ls
	}
	return jc.rs
}

// sided is a parsed subtree plus the join side its columns touch.
type sided struct {
	node *expr.Node
	side int
}

// parseWhere parses a join WHERE clause and splits the top-level
// conjunction into per-side filters. The top level is an OR of ANDs;
// only the outermost AND may mix sides (each conjunct routes to its
// side), and any top-level OR forces the whole clause onto one side.
func (jc *joinCtx) parseWhere() (left, right expr.Query, err error) {
	conj, err := jc.parseAndList()
	if err != nil {
		return expr.Query{}, expr.Query{}, err
	}
	if isKeyword(jc.ps.cur(), "OR") {
		// OR at the top: fold the AND list to one side, then fold in
		// each OR operand, which must match that side.
		first, err := combineSided(conj, jc.ps.cur().pos)
		if err != nil {
			return expr.Query{}, expr.Query{}, err
		}
		children := []*expr.Node{first.node}
		for isKeyword(jc.ps.cur(), "OR") {
			pos := jc.ps.cur().pos
			jc.ps.next()
			more, err := jc.parseAndList()
			if err != nil {
				return expr.Query{}, expr.Query{}, err
			}
			operand, err := combineSided(more, pos)
			if err != nil {
				return expr.Query{}, expr.Query{}, err
			}
			if operand.side != first.side {
				return expr.Query{}, expr.Query{}, fmt.Errorf("sqlparse: OR across join sides at %d (filters push down one side at a time)", pos)
			}
			children = append(children, operand.node)
		}
		conj = []sided{{node: expr.Or(children...), side: first.side}}
	}
	var lc, rc []*expr.Node
	for _, c := range conj {
		if c.side == 0 {
			lc = append(lc, c.node)
		} else {
			rc = append(rc, c.node)
		}
	}
	if len(lc) > 0 {
		left = expr.Query{Root: expr.And(lc...)}
	}
	if len(rc) > 0 {
		right = expr.Query{Root: expr.And(rc...)}
	}
	return left, right, nil
}

// parseAndList parses PRIMARY [AND PRIMARY]... keeping each conjunct's
// side separate so the caller can split them.
func (jc *joinCtx) parseAndList() ([]sided, error) {
	first, err := jc.parsePrimary()
	if err != nil {
		return nil, err
	}
	out := []sided{first}
	for isKeyword(jc.ps.cur(), "AND") {
		jc.ps.next()
		next, err := jc.parsePrimary()
		if err != nil {
			return nil, err
		}
		out = append(out, next)
	}
	return out, nil
}

// parsePrimary parses a parenthesized group (single-side inside) or a
// predicate. The nesting guard is shared with the base grammar.
func (jc *joinCtx) parsePrimary() (sided, error) {
	ps := jc.ps
	if ps.cur().kind == tokLParen {
		ps.depth++
		if ps.depth > maxNestingDepth {
			return sided{}, fmt.Errorf("sqlparse: expression nested deeper than %d at %d", maxNestingDepth, ps.cur().pos)
		}
		pos := ps.cur().pos
		ps.next()
		inner, err := jc.parseGroup(pos)
		if err != nil {
			return sided{}, err
		}
		ps.depth--
		if _, err := ps.expect(tokRParen, ")"); err != nil {
			return sided{}, err
		}
		return inner, nil
	}
	return jc.parsePredicate()
}

// parseGroup parses the inside of parens: an OR of ANDs that must all
// land on one side (a nested group is a single conjunct, so it cannot
// split).
func (jc *joinCtx) parseGroup(pos int) (sided, error) {
	conj, err := jc.parseAndList()
	if err != nil {
		return sided{}, err
	}
	first, err := combineSided(conj, pos)
	if err != nil {
		return sided{}, err
	}
	children := []*expr.Node{first.node}
	for isKeyword(jc.ps.cur(), "OR") {
		opos := jc.ps.cur().pos
		jc.ps.next()
		more, err := jc.parseAndList()
		if err != nil {
			return sided{}, err
		}
		operand, err := combineSided(more, opos)
		if err != nil {
			return sided{}, err
		}
		if operand.side != first.side {
			return sided{}, fmt.Errorf("sqlparse: OR across join sides at %d (filters push down one side at a time)", opos)
		}
		children = append(children, operand.node)
	}
	return sided{node: expr.Or(children...), side: first.side}, nil
}

// combineSided ANDs conjuncts that must share one side.
func combineSided(conj []sided, pos int) (sided, error) {
	side := conj[0].side
	nodes := make([]*expr.Node, len(conj))
	for i, c := range conj {
		if c.side != side {
			return sided{}, fmt.Errorf("sqlparse: conjunction mixes join sides inside a group at %d (split into top-level AND terms)", pos)
		}
		nodes[i] = c.node
	}
	return sided{node: expr.And(nodes...), side: side}, nil
}

// parsePredicate parses one predicate of a join filter: the same
// grammar as the base parser minus column-vs-column comparisons (the
// ON clause is the only cross-column predicate in a join).
func (jc *joinCtx) parsePredicate() (sided, error) {
	ps := jc.ps
	colTok, err := ps.expect(tokIdent, "column name")
	if err != nil {
		return sided{}, err
	}
	cr, err := jc.resolve(colTok)
	if err != nil {
		return sided{}, err
	}
	sc := jc.schema(cr.Side)
	col := cr.Col
	t := ps.next()
	switch {
	case t.kind == tokOp:
		rhs := ps.next()
		if rhs.kind == tokIdent && !looksLikeValueKeyword(rhs.text) {
			return sided{}, fmt.Errorf("sqlparse: column-to-column predicates are not supported in join filters at %d", rhs.pos)
		}
		lit, err := ps.p.literalIn(sc, col, rhs)
		if err != nil {
			return sided{}, err
		}
		if t.text == "<>" {
			return sided{}, fmt.Errorf("sqlparse: <> is not supported (no negated cuts) at %d", t.pos)
		}
		op, err := opFromText(t.text)
		if err != nil {
			return sided{}, err
		}
		return sided{node: expr.NewPred(expr.Pred{Col: col, Op: op, Literal: lit}), side: cr.Side}, nil
	case isKeyword(t, "IN"):
		if _, err := ps.expect(tokLParen, "("); err != nil {
			return sided{}, err
		}
		var vals []int64
		for {
			v := ps.next()
			lit, err := ps.p.literalIn(sc, col, v)
			if err != nil {
				return sided{}, err
			}
			vals = append(vals, lit)
			sep := ps.next()
			if sep.kind == tokRParen {
				break
			}
			if sep.kind != tokComma {
				return sided{}, fmt.Errorf("sqlparse: expected ',' or ')' at %d", sep.pos)
			}
		}
		return sided{node: expr.NewPred(expr.NewIn(col, vals)), side: cr.Side}, nil
	case isKeyword(t, "BETWEEN"):
		loTok := ps.next()
		lo, err := ps.p.literalIn(sc, col, loTok)
		if err != nil {
			return sided{}, err
		}
		andTok := ps.next()
		if !isKeyword(andTok, "AND") {
			return sided{}, fmt.Errorf("sqlparse: BETWEEN requires AND at %d", andTok.pos)
		}
		hiTok := ps.next()
		hi, err := ps.p.literalIn(sc, col, hiTok)
		if err != nil {
			return sided{}, err
		}
		return sided{node: expr.And(
			expr.NewPred(expr.Pred{Col: col, Op: expr.Ge, Literal: lo}),
			expr.NewPred(expr.Pred{Col: col, Op: expr.Le, Literal: hi}),
		), side: cr.Side}, nil
	case isKeyword(t, "LIKE"):
		pat, err := ps.expect(tokString, "pattern string")
		if err != nil {
			return sided{}, err
		}
		n, err := ps.p.likePredIn(sc, col, pat.text, pat.pos)
		if err != nil {
			return sided{}, err
		}
		return sided{node: n, side: cr.Side}, nil
	}
	return sided{}, fmt.Errorf("sqlparse: expected operator after column at %d, got %q", t.pos, t.text)
}
