package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/table"
)

func mustParseRow(t *testing.T, sql string) (expr.RowStmt, *Parser) {
	t.Helper()
	p := NewParser(testSchema())
	stmt, err := p.ParseRowSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return stmt, p
}

// TestParseRowSelectBasics pins the single-table grammar end to end.
func TestParseRowSelectBasics(t *testing.T) {
	stmt, _ := mustParseRow(t, "SELECT a, b FROM t WHERE a < 10 ORDER BY b DESC, a ASC LIMIT 5")
	rq := stmt.Row
	if rq == nil {
		t.Fatal("expected a single-table row query")
	}
	if len(rq.Cols) != 2 || rq.Cols[0] != 0 || rq.Cols[1] != 1 {
		t.Fatalf("cols = %v", rq.Cols)
	}
	want := []expr.OrderKey{{Pos: 1, Desc: true}, {Pos: 0}}
	if len(rq.OrderBy) != 2 || rq.OrderBy[0] != want[0] || rq.OrderBy[1] != want[1] {
		t.Fatalf("order = %v, want %v", rq.OrderBy, want)
	}
	if rq.Limit != 5 || rq.Filter.Root == nil {
		t.Fatalf("limit=%d filter=%v", rq.Limit, rq.Filter.Root)
	}

	// Dates, BETWEEN, LIKE, and dict literals all flow through the shared
	// literal path.
	stmt, p := mustParseRow(t, "SELECT ship FROM t WHERE ship >= '1994-01-01' AND a BETWEEN 0.05 AND 0.07 AND mode LIKE 'AIR%' ORDER BY ship LIMIT 1")
	if stmt.Row == nil || stmt.Row.Filter.Root == nil {
		t.Fatal("filter missing")
	}
	rendered := stmt.StringWith(p.Schema.Names(), p.ACs)
	if !strings.HasPrefix(rendered, "SELECT ship FROM t WHERE ") {
		t.Fatalf("rendered = %q", rendered)
	}
}

// TestParseRowSelectJoin pins the join grammar: qualified projection,
// ON-key normalization, per-side WHERE split, and the ORDER BY tail.
func TestParseRowSelectJoin(t *testing.T) {
	stmt, _ := mustParseRow(t,
		"SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.mode = t2.mode WHERE t1.a < 10 AND t2.b > 5 ORDER BY t1.a LIMIT 3")
	jq := stmt.Join
	if jq == nil {
		t.Fatal("expected a join")
	}
	if jq.LeftTable != "t1" || jq.RightTable != "t2" || jq.LeftKey != 4 || jq.RightKey != 4 {
		t.Fatalf("join shape: %+v", jq)
	}
	if len(jq.Cols) != 2 || jq.Cols[0] != (expr.ColRef{Side: 0, Col: 0}) || jq.Cols[1] != (expr.ColRef{Side: 1, Col: 1}) {
		t.Fatalf("cols = %v", jq.Cols)
	}
	if jq.LeftFilter.Root == nil || jq.RightFilter.Root == nil {
		t.Fatal("both side filters must be populated")
	}
	if len(jq.OrderBy) != 1 || jq.OrderBy[0] != (expr.OrderKey{Pos: 0}) || jq.Limit != 3 {
		t.Fatalf("order/limit: %v %d", jq.OrderBy, jq.Limit)
	}

	// Reversed ON order normalizes to the same keys.
	rev, _ := mustParseRow(t, "SELECT t1.a FROM t1 JOIN t2 ON t2.mode = t1.mode")
	if rev.Join.LeftKey != 4 || rev.Join.RightKey != 4 {
		t.Fatalf("reversed ON: %+v", rev.Join)
	}

	// A top-level OR confined to one side is allowed.
	or, _ := mustParseRow(t, "SELECT t1.a FROM t1 JOIN t2 ON t1.b = t2.b WHERE t1.a < 2 OR t1.a > 8")
	if or.Join.LeftFilter.Root == nil || or.Join.RightFilter.Root != nil {
		t.Fatalf("one-sided OR must land on the left: %+v", or.Join)
	}
}

// TestParseRowSelectTables binds FROM names through the Tables map.
func TestParseRowSelectTables(t *testing.T) {
	left := testSchema()
	right := table.MustSchema([]table.Column{
		{Name: "k", Kind: table.Numeric, Min: 0, Max: 999},
		{Name: "v", Kind: table.Numeric, Min: 0, Max: 999},
	})
	p := NewParser(left)
	p.Tables = map[string]*table.Schema{"L": left, "R": right}
	stmt, err := p.ParseRowSelect("SELECT L.a, R.v FROM L JOIN R ON L.b = R.k")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Join.RightKey != 0 || stmt.Join.Cols[1] != (expr.ColRef{Side: 1, Col: 1}) {
		t.Fatalf("cross-schema join: %+v", stmt.Join)
	}
	if _, err := p.ParseRowSelect("SELECT L.a FROM L JOIN X ON L.b = X.k"); err == nil {
		t.Fatal("unknown table must error")
	}
	// Unqualified names private to one side resolve without a qualifier.
	stmt, err = p.ParseRowSelect("SELECT v, L.a FROM L JOIN R ON b = k")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Join.Cols[0] != (expr.ColRef{Side: 1, Col: 1}) {
		t.Fatalf("unqualified resolution: %+v", stmt.Join.Cols)
	}
}

// TestParseRowSelectErrors walks the rejection surface.
func TestParseRowSelectErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM t",
		"SELECT COUNT(*) FROM t",
		"SELECT SUM(a) FROM t",
		"SELECT FROM t",
		"SELECT nosuch FROM t",
		"SELECT a FROM t ORDER BY b",
		"SELECT a FROM t ORDER BY nosuch",
		"SELECT a FROM t LIMIT 0",
		"SELECT a FROM t LIMIT -3",
		"SELECT a FROM t LIMIT many",
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t WHERE a < 1 trailing",
		"SELECT a FROM t1 JOIN t1 ON t1.a = t1.b",
		"SELECT t1.a FROM t1 JOIN t2 ON t1.a < t2.a",
		"SELECT t1.a FROM t1 JOIN t2 ON t1.a = t1.b",
		"SELECT t1.a FROM t1 JOIN t2 WHERE t1.a < 1",
		"SELECT a FROM t1 JOIN t2 ON t1.a = t2.a",                               // ambiguous projection
		"SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a WHERE t1.a < 1 OR t2.b > 2", // OR across sides
		"SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a WHERE (t1.a < 1 AND t2.b > 2)",
		"SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a WHERE t1.a < t1.b",
		"SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a WHERE zz.a < 1",
		"SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a ORDER BY t2.b",
		"SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a WHERE t1.a <> 1",
		"UPDATE t SET a = 1",
	}
	for _, sql := range bad {
		p := NewParser(testSchema())
		if _, err := p.ParseRowSelect(sql); err == nil {
			t.Errorf("%q: must error", sql)
		}
	}
}

// TestParseRowSelectDepthLimit pins the shared nesting guard on the
// join-filter grammar.
func TestParseRowSelectDepthLimit(t *testing.T) {
	p := NewParser(testSchema())
	deep := "SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a WHERE " +
		strings.Repeat("(", 5000) + "t1.a < 1" + strings.Repeat(")", 5000)
	if _, err := p.ParseRowSelect(deep); err == nil {
		t.Fatal("5000-deep join filter must be rejected")
	}
	ok := "SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a WHERE " +
		strings.Repeat("(", 50) + "t1.a < 1" + strings.Repeat(")", 50)
	if _, err := p.ParseRowSelect(ok); err != nil {
		t.Fatalf("50-deep join filter must parse: %v", err)
	}
}

// FuzzParseRowSelect extends the parser hardening to the row grammar:
//
//  1. ParseRowSelect never panics, whatever bytes arrive.
//  2. Formatting is a fixpoint: a successfully parsed statement,
//     rendered back to canonical SQL, re-parses to a statement that
//     renders identically — including qualified join columns, per-side
//     WHERE clauses, ORDER BY de-duplication, and LIMIT.
//
// The maxNestingDepth guard covers join filters exactly as it does the
// base grammar — the deep-paren seed pins that.
func FuzzParseRowSelect(f *testing.F) {
	seeds := []string{
		"SELECT a, b FROM t",
		"SELECT a FROM t WHERE a < 10 ORDER BY a LIMIT 5",
		"SELECT a, b, mode FROM t WHERE (a < 10 OR b > 90) AND mode IN ('AIR', 'RAIL') ORDER BY b DESC, a LIMIT 100",
		"SELECT ship, a FROM t WHERE ship >= '1994-01-01' AND a BETWEEN 0.05 AND 0.07",
		"SELECT mode FROM t WHERE mode LIKE 'AIR%' ORDER BY mode DESC",
		"SELECT a, a FROM t ORDER BY a",
		"SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.mode = t2.mode WHERE t1.a < 10 AND t2.b > 5 ORDER BY t1.a LIMIT 3",
		"SELECT x.a, y.a FROM x JOIN y ON y.b = x.b WHERE x.mode IN ('AIR') AND (y.a < 2 OR y.a > 8)",
		"SELECT l.ship, r.commit_d FROM l JOIN r ON l.a = r.a WHERE l.ship BETWEEN 10 AND 20 OR l.ship > 100",
		"SELECT * FROM t",
		"SELECT COUNT(*) FROM t",
		"SELECT a FROM t ORDER BY b",
		"SELECT a FROM t LIMIT 0",
		"SELECT t1.a FROM t1 JOIN t1 ON t1.a = t1.a",
		"SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a WHERE t1.a < 1 OR t2.b > 2",
		"SELECT a FROM t WHERE " + strings.Repeat("(", 300) + "a<1" + strings.Repeat(")", 300),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		p := NewParser(testSchema())
		stmt, err := p.ParseRowSelect(sql) // must not panic
		if err != nil {
			return
		}
		names := p.Schema.Names()
		rendered := stmt.StringWith(names, p.ACs)
		// LIKE patterns matching nothing lower to an empty IN set, which
		// has no SQL spelling; skip the fixpoint check for those.
		if strings.Contains(rendered, "IN ()") {
			return
		}
		p2 := NewParser(testSchema())
		stmt2, err := p2.ParseRowSelect(rendered)
		if err != nil {
			t.Fatalf("round-trip parse failed\n  input:    %q\n  rendered: %q\n  error:    %v", sql, rendered, err)
		}
		if got := stmt2.StringWith(names, p2.ACs); got != rendered {
			t.Fatalf("format not a fixpoint\n  input:  %q\n  first:  %q\n  second: %q", sql, rendered, got)
		}
	})
}
