// Package sqlparse is a small SQL parser used to feed real query text
// into the qd-tree pipeline (Sec. 3.4: "we simply parse [queries] through
// a standard SQL planner and take all pushed-down unary predicates as
// allowed cuts"). It supports the predicate language of the paper:
// comparisons {<, <=, >, >=, =}, IN lists, BETWEEN, LIKE with a literal
// prefix (resolved against the column dictionary), arbitrary AND/OR
// nesting, and column-vs-column comparisons, which become advanced cuts
// (Sec. 6.1).
//
// Two entry points cover the two query surfaces:
//
//   - Parse takes a bare boolean filter (or the WHERE clause of a full
//     statement) and returns the expr.Query the tree routes.
//   - ParseSelect takes a full aggregation statement — SELECT over
//     COUNT(*)/COUNT/SUM/MIN/MAX/AVG with an optional WHERE and GROUP BY
//     — and returns an expr.AggQuery for the aggregate execution layer.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/expr"
	"repro/internal/table"
)

// Parser converts SQL text to expr.Query values against a schema. Advanced
// cuts discovered during parsing are appended to ACs and de-duplicated, so
// a workload parsed with one Parser shares one advanced-cut table.
type Parser struct {
	Schema *table.Schema
	ACs    []expr.AdvCut
	// Tables optionally maps FROM-clause table names to schemas for
	// two-table joins (ParseRowSelect). When nil, every table name
	// binds Schema and a join is a self-join with positional aliases.
	Tables map[string]*table.Schema
	// DateEpoch converts 'YYYY-MM-DD' literals to day numbers. The
	// default counts days since 1992-01-01 (the TPC-H origin).
	DateEpoch func(y, m, d int) int64
}

// NewParser builds a parser over the schema.
func NewParser(s *table.Schema) *Parser {
	return &Parser{Schema: s, DateEpoch: defaultEpoch}
}

func defaultEpoch(y, m, d int) int64 {
	days := int64(0)
	for yy := 1992; yy < y; yy++ {
		days += 365
		if yy%4 == 0 {
			days++
		}
	}
	mdays := []int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	for mm := 1; mm < m; mm++ {
		days += int64(mdays[mm-1])
	}
	if y%4 == 0 && m > 2 {
		days++
	}
	return days + int64(d-1)
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // < <= > >= = <>
	tokLParen
	tokRParen
	tokComma
	tokStar
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '*':
			l.emit(tokStar, "*")
		case c == '<':
			if l.peek(1) == '=' {
				l.emitN(tokOp, "<=", 2)
			} else if l.peek(1) == '>' {
				l.emitN(tokOp, "<>", 2)
			} else {
				l.emit(tokOp, "<")
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.emitN(tokOp, ">=", 2)
			} else {
				l.emit(tokOp, ">")
			}
		case c == '=':
			l.emit(tokOp, "=")
		case c == '!':
			if l.peek(1) == '=' {
				l.emitN(tokOp, "<>", 2)
			} else {
				return nil, fmt.Errorf("sqlparse: stray '!' at %d", l.pos)
			}
		case c == '\'':
			end := strings.IndexByte(l.src[l.pos+1:], '\'')
			if end < 0 {
				return nil, fmt.Errorf("sqlparse: unterminated string at %d", l.pos)
			}
			l.toks = append(l.toks, token{tokString, l.src[l.pos+1 : l.pos+1+end], l.pos})
			l.pos += end + 2
		case c == '-' || c >= '0' && c <= '9':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

func (l *lexer) emit(k tokKind, s string) { l.emitN(k, s, len(s)) }
func (l *lexer) emitN(k tokKind, s string, n int) {
	l.toks = append(l.toks, token{k, s, l.pos})
	l.pos += n
}

// maxNestingDepth bounds parenthesis recursion so adversarial input (for
// instance from the fuzzer) returns an error instead of exhausting the
// goroutine stack.
const maxNestingDepth = 200

type parseState struct {
	p     *Parser
	toks  []token
	i     int
	depth int
}

func (ps *parseState) cur() token  { return ps.toks[ps.i] }
func (ps *parseState) next() token { t := ps.toks[ps.i]; ps.i++; return t }

func (ps *parseState) expect(k tokKind, what string) (token, error) {
	t := ps.next()
	if t.kind != k {
		return t, fmt.Errorf("sqlparse: expected %s at %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// Parse parses either a full "SELECT ... FROM ... WHERE <expr>" statement
// or a bare boolean expression, returning the query.
func (p *Parser) Parse(sql string) (expr.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return expr.Query{}, err
	}
	ps := &parseState{p: p, toks: toks}
	// Skip an optional SELECT ... WHERE prefix.
	if isKeyword(ps.cur(), "SELECT") {
		for !isKeyword(ps.cur(), "WHERE") {
			if ps.cur().kind == tokEOF {
				return expr.Query{}, fmt.Errorf("sqlparse: SELECT without WHERE has no filter")
			}
			ps.next()
		}
	}
	if isKeyword(ps.cur(), "WHERE") {
		ps.next()
	}
	root, err := ps.parseOr()
	if err != nil {
		return expr.Query{}, err
	}
	if ps.cur().kind != tokEOF {
		return expr.Query{}, fmt.Errorf("sqlparse: trailing input at %d: %q", ps.cur().pos, ps.cur().text)
	}
	return expr.Query{Root: root}, nil
}

// ParseMany parses a workload of statements, sharing the advanced-cut
// table; query i is named q<i>.
func (p *Parser) ParseMany(sqls []string) ([]expr.Query, error) {
	out := make([]expr.Query, 0, len(sqls))
	for i, sql := range sqls {
		q, err := p.Parse(sql)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		q.Name = fmt.Sprintf("q%d", i)
		out = append(out, q)
	}
	return out, nil
}

// ParseSelect parses a full aggregation statement:
//
//	SELECT <item> [, <item>]... FROM <table>
//	    [WHERE <filter>] [GROUP BY <col> [, <col>]...]
//
// where each item is COUNT(*), COUNT(col), SUM(col), MIN(col), MAX(col),
// AVG(col), or a bare grouping column (which must then appear in GROUP
// BY). The table name is accepted and ignored — the parser binds a single
// schema. The filter uses the same predicate grammar as Parse, so every
// pushed-down predicate stays a qd-tree cut candidate.
func (p *Parser) ParseSelect(sql string) (expr.AggQuery, error) {
	toks, err := lex(sql)
	if err != nil {
		return expr.AggQuery{}, err
	}
	ps := &parseState{p: p, toks: toks}
	if !isKeyword(ps.cur(), "SELECT") {
		return expr.AggQuery{}, fmt.Errorf("sqlparse: aggregation statement must start with SELECT, got %q at %d", ps.cur().text, ps.cur().pos)
	}
	ps.next()

	var aq expr.AggQuery
	var bareCols []int // bare select-list columns; must appear in GROUP BY
	for {
		item, bare, err := ps.parseSelectItem()
		if err != nil {
			return expr.AggQuery{}, err
		}
		if bare >= 0 {
			bareCols = append(bareCols, bare)
		} else {
			aq.Aggs = append(aq.Aggs, item)
		}
		if ps.cur().kind != tokComma {
			break
		}
		ps.next()
	}
	if len(aq.Aggs) == 0 && len(bareCols) == 0 {
		return expr.AggQuery{}, fmt.Errorf("sqlparse: empty SELECT list")
	}
	if !isKeyword(ps.cur(), "FROM") {
		return expr.AggQuery{}, fmt.Errorf("sqlparse: expected FROM at %d, got %q", ps.cur().pos, ps.cur().text)
	}
	ps.next()
	if _, err := ps.expect(tokIdent, "table name"); err != nil {
		return expr.AggQuery{}, err
	}
	if isKeyword(ps.cur(), "WHERE") {
		ps.next()
		root, err := ps.parseOr()
		if err != nil {
			return expr.AggQuery{}, err
		}
		aq.Filter = expr.Query{Root: root}
	}
	if isKeyword(ps.cur(), "GROUP") {
		ps.next()
		if !isKeyword(ps.cur(), "BY") {
			return expr.AggQuery{}, fmt.Errorf("sqlparse: GROUP must be followed by BY at %d", ps.cur().pos)
		}
		ps.next()
		for {
			t, err := ps.expect(tokIdent, "grouping column")
			if err != nil {
				return expr.AggQuery{}, err
			}
			col := p.resolveCol(t.text)
			if col < 0 {
				return expr.AggQuery{}, fmt.Errorf("sqlparse: unknown column %q at %d", t.text, t.pos)
			}
			aq.GroupBy = append(aq.GroupBy, col)
			if ps.cur().kind != tokComma {
				break
			}
			ps.next()
		}
	}
	if ps.cur().kind != tokEOF {
		return expr.AggQuery{}, fmt.Errorf("sqlparse: trailing input at %d: %q", ps.cur().pos, ps.cur().text)
	}
	// Canonicalize: de-duplicate GROUP BY columns (keeping first position)
	// so the rendered form is a parse fixpoint.
	seen := make(map[int]bool, len(aq.GroupBy))
	dedup := aq.GroupBy[:0]
	for _, g := range aq.GroupBy {
		if !seen[g] {
			seen[g] = true
			dedup = append(dedup, g)
		}
	}
	aq.GroupBy = dedup
	for _, c := range bareCols {
		if !seen[c] {
			return expr.AggQuery{}, fmt.Errorf("sqlparse: select column %q is not aggregated and not in GROUP BY", p.Schema.Cols[c].Name)
		}
	}
	return aq, nil
}

// parseSelectItem parses one SELECT-list item. It returns either an
// aggregate (bare == -1) or a bare column ordinal (bare >= 0).
func (ps *parseState) parseSelectItem() (expr.Agg, int, error) {
	t, err := ps.expect(tokIdent, "aggregate function or column")
	if err != nil {
		return expr.Agg{}, -1, err
	}
	var fn expr.AggFunc
	switch strings.ToUpper(t.text) {
	case "COUNT":
		fn = expr.AggCount
	case "SUM":
		fn = expr.AggSum
	case "MIN":
		fn = expr.AggMin
	case "MAX":
		fn = expr.AggMax
	case "AVG":
		fn = expr.AggAvg
	default:
		// A bare column: only legal when grouped by it (validated later).
		if ps.cur().kind == tokLParen {
			return expr.Agg{}, -1, fmt.Errorf("sqlparse: unknown aggregate function %q at %d", t.text, t.pos)
		}
		col := ps.p.resolveCol(t.text)
		if col < 0 {
			return expr.Agg{}, -1, fmt.Errorf("sqlparse: unknown column %q at %d", t.text, t.pos)
		}
		return expr.Agg{}, col, nil
	}
	if _, err := ps.expect(tokLParen, "("); err != nil {
		return expr.Agg{}, -1, err
	}
	if fn == expr.AggCount && ps.cur().kind == tokStar {
		ps.next()
		if _, err := ps.expect(tokRParen, ")"); err != nil {
			return expr.Agg{}, -1, err
		}
		return expr.Agg{Func: expr.AggCountStar}, -1, nil
	}
	argTok, err := ps.expect(tokIdent, "column name")
	if err != nil {
		return expr.Agg{}, -1, err
	}
	col := ps.p.resolveCol(argTok.text)
	if col < 0 {
		return expr.Agg{}, -1, fmt.Errorf("sqlparse: unknown column %q at %d", argTok.text, argTok.pos)
	}
	if _, err := ps.expect(tokRParen, ")"); err != nil {
		return expr.Agg{}, -1, err
	}
	return expr.Agg{Func: fn, Col: col}, -1, nil
}

// ParseSelectMany parses an aggregation workload, sharing the advanced-cut
// table; statement i is named q<i>.
func (p *Parser) ParseSelectMany(sqls []string) ([]expr.AggQuery, error) {
	out := make([]expr.AggQuery, 0, len(sqls))
	for i, sql := range sqls {
		aq, err := p.ParseSelect(sql)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		aq.Name = fmt.Sprintf("q%d", i)
		out = append(out, aq)
	}
	return out, nil
}

func (ps *parseState) parseOr() (*expr.Node, error) {
	left, err := ps.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []*expr.Node{left}
	for isKeyword(ps.cur(), "OR") {
		ps.next()
		right, err := ps.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return expr.Or(children...), nil
}

func (ps *parseState) parseAnd() (*expr.Node, error) {
	left, err := ps.parsePrimary()
	if err != nil {
		return nil, err
	}
	children := []*expr.Node{left}
	for isKeyword(ps.cur(), "AND") {
		ps.next()
		right, err := ps.parsePrimary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return expr.And(children...), nil
}

func (ps *parseState) parsePrimary() (*expr.Node, error) {
	if ps.cur().kind == tokLParen {
		ps.depth++
		if ps.depth > maxNestingDepth {
			return nil, fmt.Errorf("sqlparse: expression nested deeper than %d at %d", maxNestingDepth, ps.cur().pos)
		}
		ps.next()
		inner, err := ps.parseOr()
		if err != nil {
			return nil, err
		}
		ps.depth--
		if _, err := ps.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return ps.parsePredicate()
}

func (ps *parseState) parsePredicate() (*expr.Node, error) {
	colTok, err := ps.expect(tokIdent, "column name")
	if err != nil {
		return nil, err
	}
	col := ps.p.resolveCol(colTok.text)
	if col < 0 {
		return nil, fmt.Errorf("sqlparse: unknown column %q at %d", colTok.text, colTok.pos)
	}
	t := ps.next()
	switch {
	case t.kind == tokOp:
		// col op literal | col op column (advanced cut).
		rhs := ps.next()
		if rhs.kind == tokIdent && !looksLikeValueKeyword(rhs.text) {
			rcol := ps.p.resolveCol(rhs.text)
			if rcol < 0 {
				return nil, fmt.Errorf("sqlparse: unknown column %q at %d", rhs.text, rhs.pos)
			}
			op, err := opFromText(t.text)
			if err != nil {
				return nil, err
			}
			return expr.NewAdv(ps.p.internAC(expr.AdvCut{Left: col, Op: op, Right: rcol})), nil
		}
		lit, err := ps.p.literal(col, rhs)
		if err != nil {
			return nil, err
		}
		if t.text == "<>" {
			// a <> v over a categorical becomes OR of the complement? Too
			// wide; reject with a clear error — the paper's cut language
			// has no negation.
			return nil, fmt.Errorf("sqlparse: <> is not supported (no negated cuts) at %d", t.pos)
		}
		op, err := opFromText(t.text)
		if err != nil {
			return nil, err
		}
		return expr.NewPred(expr.Pred{Col: col, Op: op, Literal: lit}), nil
	case isKeyword(t, "IN"):
		if _, err := ps.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		var vals []int64
		for {
			v := ps.next()
			lit, err := ps.p.literal(col, v)
			if err != nil {
				return nil, err
			}
			vals = append(vals, lit)
			sep := ps.next()
			if sep.kind == tokRParen {
				break
			}
			if sep.kind != tokComma {
				return nil, fmt.Errorf("sqlparse: expected ',' or ')' at %d", sep.pos)
			}
		}
		return expr.NewPred(expr.NewIn(col, vals)), nil
	case isKeyword(t, "BETWEEN"):
		loTok := ps.next()
		lo, err := ps.p.literal(col, loTok)
		if err != nil {
			return nil, err
		}
		andTok := ps.next()
		if !isKeyword(andTok, "AND") {
			return nil, fmt.Errorf("sqlparse: BETWEEN requires AND at %d", andTok.pos)
		}
		hiTok := ps.next()
		hi, err := ps.p.literal(col, hiTok)
		if err != nil {
			return nil, err
		}
		return expr.And(
			expr.NewPred(expr.Pred{Col: col, Op: expr.Ge, Literal: lo}),
			expr.NewPred(expr.Pred{Col: col, Op: expr.Le, Literal: hi}),
		), nil
	case isKeyword(t, "LIKE"):
		pat, err := ps.expect(tokString, "pattern string")
		if err != nil {
			return nil, err
		}
		return ps.p.likePred(col, pat.text, pat.pos)
	}
	return nil, fmt.Errorf("sqlparse: expected operator after column at %d, got %q", t.pos, t.text)
}

func looksLikeValueKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "TRUE", "FALSE", "NULL":
		return true
	}
	return false
}

func opFromText(s string) (expr.Op, error) {
	switch s {
	case "<":
		return expr.Lt, nil
	case "<=":
		return expr.Le, nil
	case ">":
		return expr.Gt, nil
	case ">=":
		return expr.Ge, nil
	case "=":
		return expr.Eq, nil
	}
	return 0, fmt.Errorf("sqlparse: unsupported operator %q", s)
}

func (p *Parser) resolveCol(name string) int {
	// Strip a table qualifier ("R.a" -> "a").
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		if c := p.Schema.Col(name[i+1:]); c >= 0 {
			return c
		}
	}
	return p.Schema.Col(name)
}

// internAC de-duplicates advanced cuts across a workload.
func (p *Parser) internAC(ac expr.AdvCut) int {
	for i, e := range p.ACs {
		if e == ac {
			return i
		}
	}
	p.ACs = append(p.ACs, ac)
	return len(p.ACs) - 1
}

// literal resolves a literal token against the column type: numbers parse
// directly; 'YYYY-MM-DD' strings become day numbers; other strings resolve
// through the column dictionary.
func (p *Parser) literal(col int, t token) (int64, error) {
	return p.literalIn(p.Schema, col, t)
}

// literalIn is literal against an explicit schema (join sides may bind
// different tables).
func (p *Parser) literalIn(sc *table.Schema, col int, t token) (int64, error) {
	switch t.kind {
	case tokNumber:
		// Fixed-point decimals (e.g. 0.05) scale by the fractional width.
		if dot := strings.IndexByte(t.text, '.'); dot >= 0 {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return 0, fmt.Errorf("sqlparse: bad number %q at %d", t.text, t.pos)
			}
			scale := len(t.text) - dot - 1
			for i := 0; i < scale; i++ {
				f *= 10
			}
			return int64(f + 0.5), nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("sqlparse: bad number %q at %d", t.text, t.pos)
		}
		return v, nil
	case tokString:
		if y, m, d, ok := parseDate(t.text); ok {
			return p.DateEpoch(y, m, d), nil
		}
		code := sc.Code(col, t.text)
		if code < 0 {
			return 0, fmt.Errorf("sqlparse: value %q not in dictionary of column %q", t.text, sc.Cols[col].Name)
		}
		return code, nil
	}
	return 0, fmt.Errorf("sqlparse: expected literal at %d, got %q", t.pos, t.text)
}

func parseDate(s string) (y, m, d int, ok bool) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return 0, 0, 0, false
	}
	var err error
	if y, err = strconv.Atoi(s[:4]); err != nil {
		return 0, 0, 0, false
	}
	if m, err = strconv.Atoi(s[5:7]); err != nil {
		return 0, 0, 0, false
	}
	if d, err = strconv.Atoi(s[8:10]); err != nil {
		return 0, 0, 0, false
	}
	return y, m, d, m >= 1 && m <= 12 && d >= 1 && d <= 31
}

// likePred lowers LIKE 'prefix%' (or a pattern with no wildcard) to an IN
// predicate over the dictionary codes whose strings match — the same
// dictionary-filtering treatment the paper applies to string predicates.
func (p *Parser) likePred(col int, pattern string, pos int) (*expr.Node, error) {
	return p.likePredIn(p.Schema, col, pattern, pos)
}

// likePredIn is likePred against an explicit schema.
func (p *Parser) likePredIn(sc *table.Schema, col int, pattern string, pos int) (*expr.Node, error) {
	dict := sc.Cols[col].Dict
	if dict == nil {
		return nil, fmt.Errorf("sqlparse: LIKE on column %q without dictionary at %d", sc.Cols[col].Name, pos)
	}
	var vals []int64
	match := func(s string) bool {
		return likeMatch(pattern, s)
	}
	for code, s := range dict {
		if match(s) {
			vals = append(vals, int64(code))
		}
	}
	if len(vals) == 0 {
		// No dictionary entry matches: predicate selects nothing; encode
		// as an empty IN which never matches.
		return expr.NewPred(expr.Pred{Col: col, Op: expr.In, Set: nil}), nil
	}
	return expr.NewPred(expr.NewIn(col, vals)), nil
}

// likeMatch evaluates a SQL LIKE pattern (% and _ wildcards).
func likeMatch(pattern, s string) bool {
	// Dynamic programming over pattern/string positions.
	pn, sn := len(pattern), len(s)
	prev := make([]bool, sn+1)
	curr := make([]bool, sn+1)
	prev[0] = true
	for pi := 1; pi <= pn; pi++ {
		pc := pattern[pi-1]
		curr[0] = prev[0] && pc == '%'
		for si := 1; si <= sn; si++ {
			switch pc {
			case '%':
				curr[si] = curr[si-1] || prev[si]
			case '_':
				curr[si] = prev[si-1]
			default:
				curr[si] = prev[si-1] && s[si-1] == pc
			}
		}
		prev, curr = curr, prev
	}
	return prev[sn]
}
