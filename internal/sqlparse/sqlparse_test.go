package sqlparse

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/table"
)

func testSchema() *table.Schema {
	return table.MustSchema([]table.Column{
		{Name: "a", Kind: table.Numeric, Min: 0, Max: 999},
		{Name: "b", Kind: table.Numeric, Min: 0, Max: 999},
		{Name: "ship", Kind: table.Numeric, Min: 0, Max: 3000},
		{Name: "commit_d", Kind: table.Numeric, Min: 0, Max: 3000},
		{Name: "mode", Kind: table.Categorical, Dom: 4, Dict: []string{"AIR", "AIR REG", "RAIL", "TRUCK"}},
	})
}

func mustParse(t *testing.T, sql string) (expr.Query, *Parser) {
	t.Helper()
	p := NewParser(testSchema())
	q, err := p.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return q, p
}

func TestParsePaperExample(t *testing.T) {
	// The Sec. 3.4 example: three cuts extracted.
	q, _ := mustParse(t, "SELECT x FROM R WHERE (R.a < 10 OR R.b > 90) AND (mode IN ('AIR', 'RAIL'))")
	preds := q.Preds()
	if len(preds) != 3 {
		t.Fatalf("extracted %d cuts, paper says 3", len(preds))
	}
	if !q.Eval([]int64{5, 0, 0, 0, 0}, nil) {
		t.Error("a=5, mode=AIR must match")
	}
	if q.Eval([]int64{5, 0, 0, 0, 3}, nil) {
		t.Error("mode=TRUCK must not match")
	}
	if q.Eval([]int64{50, 50, 0, 0, 0}, nil) {
		t.Error("neither disjunct holds: must not match")
	}
}

func TestParseBareExpression(t *testing.T) {
	q, _ := mustParse(t, "a >= 10 AND a <= 20")
	if !q.Eval([]int64{15, 0, 0, 0, 0}, nil) || q.Eval([]int64{25, 0, 0, 0, 0}, nil) {
		t.Error("range semantics wrong")
	}
}

func TestParseBetween(t *testing.T) {
	q, _ := mustParse(t, "b BETWEEN 5 AND 9")
	for v, want := range map[int64]bool{4: false, 5: true, 9: true, 10: false} {
		if got := q.Eval([]int64{0, v, 0, 0, 0}, nil); got != want {
			t.Errorf("b=%d: got %v", v, got)
		}
	}
}

func TestParseAdvancedCut(t *testing.T) {
	q, p := mustParse(t, "ship < commit_d AND a < 100")
	refs := q.AdvRefs()
	if len(refs) != 1 || len(p.ACs) != 1 {
		t.Fatalf("advanced cuts: refs=%v table=%v", refs, p.ACs)
	}
	ac := p.ACs[0]
	if ac.Left != 2 || ac.Op != expr.Lt || ac.Right != 3 {
		t.Fatalf("AC = %+v", ac)
	}
	if !q.Eval([]int64{5, 0, 10, 20, 0}, p.ACs) {
		t.Error("ship<commit must match")
	}
	if q.Eval([]int64{5, 0, 30, 20, 0}, p.ACs) {
		t.Error("ship>commit must not match")
	}
}

func TestAdvancedCutInterned(t *testing.T) {
	p := NewParser(testSchema())
	if _, err := p.Parse("ship < commit_d"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Parse("ship < commit_d AND a < 5"); err != nil {
		t.Fatal(err)
	}
	if len(p.ACs) != 1 {
		t.Fatalf("ACs = %d, want 1 (interned)", len(p.ACs))
	}
	if _, err := p.Parse("commit_d < ship"); err != nil {
		t.Fatal(err)
	}
	if len(p.ACs) != 2 {
		t.Fatalf("ACs = %d, want 2 (different direction)", len(p.ACs))
	}
}

func TestParseDateLiteral(t *testing.T) {
	q, _ := mustParse(t, "ship >= '1992-01-03'")
	if !q.Eval([]int64{0, 0, 2, 0, 0}, nil) || q.Eval([]int64{0, 0, 1, 0, 0}, nil) {
		t.Error("date literal must convert to day number 2")
	}
	// Leap-year handling: 1992-03-01 is day 60.
	q2, _ := mustParse(t, "ship = '1992-03-01'")
	if !q2.Eval([]int64{0, 0, 60, 0, 0}, nil) {
		t.Error("1992-03-01 must be day 60")
	}
}

func TestParseStringDictionary(t *testing.T) {
	q, _ := mustParse(t, "mode = 'AIR REG'")
	if !q.Eval([]int64{0, 0, 0, 0, 1}, nil) {
		t.Error("dictionary code 1 must match 'AIR REG'")
	}
	p := NewParser(testSchema())
	if _, err := p.Parse("mode = 'BOAT'"); err == nil {
		t.Error("unknown dictionary value must error")
	}
}

func TestParseLike(t *testing.T) {
	q, _ := mustParse(t, "mode LIKE 'AIR%'")
	// Matches AIR (0) and AIR REG (1).
	if !q.Eval([]int64{0, 0, 0, 0, 0}, nil) || !q.Eval([]int64{0, 0, 0, 0, 1}, nil) {
		t.Error("prefix LIKE must match both AIR modes")
	}
	if q.Eval([]int64{0, 0, 0, 0, 2}, nil) {
		t.Error("RAIL must not match AIR%")
	}
	// No match: empty IN never matches.
	q2, _ := mustParse(t, "mode LIKE 'ZZZ%'")
	for v := int64(0); v < 4; v++ {
		if q2.Eval([]int64{0, 0, 0, 0, v}, nil) {
			t.Error("unmatched LIKE must select nothing")
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"AIR%", "AIR REG", true},
		{"%REG", "AIR REG", true},
		{"%IR R%", "AIR REG", true},
		{"A_R", "AIR", true},
		{"A_R", "AAIR", false},
		{"", "", true},
		{"%", "anything", true},
		{"abc", "abc", true},
		{"abc", "abd", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestParseDecimalScaling(t *testing.T) {
	// 0.05 with two fractional digits scales to 5 (fixed-point encoding).
	q, _ := mustParse(t, "a >= 0.05")
	if !q.Eval([]int64{5, 0, 0, 0, 0}, nil) || q.Eval([]int64{4, 0, 0, 0, 0}, nil) {
		t.Error("decimal scaling wrong")
	}
}

func TestParseErrors(t *testing.T) {
	p := NewParser(testSchema())
	bad := []string{
		"nope < 5",
		"a << 5",
		"a <> 5",
		"a < ",
		"(a < 5",
		"a IN (1, 2",
		"a BETWEEN 1 OR 2",
		"SELECT x FROM t",
		"a < 5 extra",
		"a LIKE 'x%'", // numeric column without dictionary
		"mode LIKE missing_quote",
		"a = 'not-in-dict'",
	}
	for _, sql := range bad {
		if _, err := p.Parse(sql); err == nil {
			t.Errorf("%q: expected error", sql)
		}
	}
}

func TestParseMany(t *testing.T) {
	p := NewParser(testSchema())
	qs, err := p.ParseMany([]string{"a < 5", "b > 7"})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0].Name != "q0" || qs[1].Name != "q1" {
		t.Fatalf("ParseMany = %+v", qs)
	}
	if _, err := p.ParseMany([]string{"a < 5", "zzz"}); err == nil {
		t.Error("bad workload must error with query index")
	}
}
