// Row-returning statements: projection lists, ORDER BY/LIMIT, and
// two-table equi-joins. These extend the aggregate-only surface in
// agg.go with the shapes ROADMAP item 3 calls for; rendering is
// canonical so a statement can be used as a plan-cache key and so
// parse→format→parse is a fixpoint (fuzz-pinned in sqlparse).
package expr

import (
	"fmt"
	"strings"
)

// ColRef names one column of a join's output: Side selects the
// FROM-clause table (0 = left, 1 = right), Col the column ordinal
// within that side's schema.
type ColRef struct {
	Side int
	Col  int
}

// OrderKey is one ORDER BY key. Pos indexes the statement's SELECT
// list (ORDER BY columns must be projected — a documented v1
// restriction that keeps the executor's comparator a pure function of
// the output tuple). Desc flips the direction; ascending is canonical
// and renders without a suffix.
type OrderKey struct {
	Pos  int
	Desc bool
}

// RowQuery is a single-table row-returning SELECT:
//
//	SELECT a, b FROM t [WHERE ...] [ORDER BY a [DESC], ...] [LIMIT k]
//
// Cols holds the projected schema ordinals in SELECT-list order.
// Limit 0 means "no LIMIT". Result order is always deterministic:
// rows sort by the ORDER BY keys and ties (or the whole result when
// OrderBy is empty) break on the full projected tuple ascending.
type RowQuery struct {
	// Name labels the statement for reporting; defaults to the
	// canonical SQL when parsed.
	Name    string
	Cols    []int
	Filter  Query
	OrderBy []OrderKey
	Limit   int
}

// JoinQuery is a two-table equi-join:
//
//	SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.k = t2.k
//	  [WHERE <single-side conjuncts>] [ORDER BY t1.a, ...] [LIMIT k]
//
// The WHERE clause must split into conjuncts that each touch only one
// side; LeftFilter/RightFilter hold the per-side pushdowns (nil Root =
// no filter). LeftTable/RightTable are the FROM-clause names, kept for
// qualified rendering; on a single-table server they are positional
// aliases of the same schema (a self-join).
type JoinQuery struct {
	Name        string
	LeftTable   string
	RightTable  string
	LeftKey     int
	RightKey    int
	Cols        []ColRef
	LeftFilter  Query
	RightFilter Query
	OrderBy     []OrderKey
	Limit       int
}

// RowStmt is the result of parsing a row-returning SELECT: exactly one
// of Row or Join is non-nil.
type RowStmt struct {
	Row  *RowQuery
	Join *JoinQuery
}

// StringWith renders the statement canonically against a single schema
// (joins qualify both sides with their FROM-clause aliases).
func (s RowStmt) StringWith(names []string, acs []AdvCut) string {
	if s.Join != nil {
		return s.Join.StringWith(names, names, acs)
	}
	return s.Row.StringWith(names, acs)
}

// Name returns the statement's label (the canonical SQL when parsed).
func (s RowStmt) Name() string {
	if s.Join != nil {
		return s.Join.Name
	}
	return s.Row.Name
}

// StringWith renders the canonical SQL form of the row query.
func (rq RowQuery) StringWith(names []string, acs []AdvCut) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, c := range rq.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(colName(c, names))
	}
	b.WriteString(" FROM t")
	if rq.Filter.Root != nil {
		b.WriteString(" WHERE ")
		b.WriteString(rq.Filter.StringWith(names, acs))
	}
	writeOrderLimit(&b, rq.OrderBy, rq.Limit, func(pos int) string {
		return colName(rq.Cols[pos], names)
	})
	return b.String()
}

// StringWith renders the canonical SQL form of the join, qualifying
// every column with its side's FROM-clause name.
func (jq JoinQuery) StringWith(leftNames, rightNames []string, acs []AdvCut) string {
	qual := func(cr ColRef) string {
		if cr.Side == 0 {
			return jq.LeftTable + "." + colName(cr.Col, leftNames)
		}
		return jq.RightTable + "." + colName(cr.Col, rightNames)
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, cr := range jq.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(qual(cr))
	}
	fmt.Fprintf(&b, " FROM %s JOIN %s ON %s = %s",
		jq.LeftTable, jq.RightTable,
		qual(ColRef{Side: 0, Col: jq.LeftKey}), qual(ColRef{Side: 1, Col: jq.RightKey}))
	lq := qualifyNames(jq.LeftTable, leftNames)
	rq := qualifyNames(jq.RightTable, rightNames)
	var sides []string
	if jq.LeftFilter.Root != nil {
		sides = append(sides, sideFilterString(jq.LeftFilter, lq, acs))
	}
	if jq.RightFilter.Root != nil {
		sides = append(sides, sideFilterString(jq.RightFilter, rq, acs))
	}
	if len(sides) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(sides, " AND "))
	}
	writeOrderLimit(&b, jq.OrderBy, jq.Limit, func(pos int) string {
		return qual(jq.Cols[pos])
	})
	return b.String()
}

// sideFilterString renders one side's filter for a combined WHERE
// clause: OR-rooted trees are parenthesized so "L AND R" reparses with
// the right precedence; AND-rooted trees concatenate naturally.
func sideFilterString(f Query, names []string, acs []AdvCut) string {
	s := f.StringWith(names, acs)
	if f.Root != nil && f.Root.Kind == KindOr && len(f.Root.Children) > 1 {
		return "(" + s + ")"
	}
	return s
}

// qualifyNames prefixes every column name with "alias.".
func qualifyNames(alias string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if n == "" {
			n = fmt.Sprintf("col%d", i)
		}
		out[i] = alias + "." + n
	}
	return out
}

// writeOrderLimit appends the canonical ORDER BY / LIMIT suffix.
func writeOrderLimit(b *strings.Builder, order []OrderKey, limit int, name func(pos int) string) {
	if len(order) > 0 {
		b.WriteString(" ORDER BY ")
		for i, k := range order {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(name(k.Pos))
			if k.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if limit > 0 {
		fmt.Fprintf(b, " LIMIT %d", limit)
	}
}
