// Package expr defines the predicate and query AST used throughout the
// qd-tree library.
//
// All column values are dictionary-encoded int64s (the paper, Sec. 3:
// "the literals, e.g. 10%, are dictionary-encoded as integers"). A unary
// predicate is (column, op, literal) where op is one of <, <=, >, >=, =, IN.
// An advanced cut (Sec. 6.1) is a binary predicate (column, cmp, column).
// Queries are arbitrary AND/OR trees over unary predicates and advanced-cut
// references (Sec. 3.3).
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Op is a comparison operator in a unary predicate.
type Op int

// Supported operators. Range comparisons {<, <=, >, >=} restrict a node's
// hypercube; equality comparisons {=, IN} operate on categorical bitmaps.
const (
	Lt Op = iota // <
	Le           // <=
	Gt           // >
	Ge           // >=
	Eq           // =
	In           // IN (literal set)
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case In:
		return "IN"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Negate returns the operator of the logical complement for range operators.
// Eq and In have no single-operator complement and panic; callers handle
// them via bitmap complement instead.
func (o Op) Negate() Op {
	switch o {
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	}
	panic("expr: Negate on non-range operator " + o.String())
}

// Pred is a unary predicate (column, op, literal) over dictionary-encoded
// values. For In, Set holds the sorted literal set and Literal is unused.
type Pred struct {
	Col     int     // column ordinal in the schema
	Op      Op      // comparison operator
	Literal int64   // literal for non-IN operators
	Set     []int64 // sorted literals for IN
}

// NewIn builds an IN predicate, sorting and de-duplicating the literal set.
func NewIn(col int, vals []int64) Pred {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	var prev int64
	for i, v := range s {
		if i == 0 || v != prev {
			out = append(out, v)
		}
		prev = v
	}
	return Pred{Col: col, Op: In, Set: out}
}

// InSet reports whether v is a member of the predicate's IN set.
func (p Pred) InSet(v int64) bool {
	i := sort.Search(len(p.Set), func(i int) bool { return p.Set[i] >= v })
	return i < len(p.Set) && p.Set[i] == v
}

// Eval evaluates the predicate against a single row of column values.
func (p Pred) Eval(row []int64) bool {
	return p.EvalValue(row[p.Col])
}

// EvalValue evaluates the predicate against one value of its column.
func (p Pred) EvalValue(v int64) bool {
	switch p.Op {
	case Lt:
		return v < p.Literal
	case Le:
		return v <= p.Literal
	case Gt:
		return v > p.Literal
	case Ge:
		return v >= p.Literal
	case Eq:
		return v == p.Literal
	case In:
		return p.InSet(v)
	}
	return false
}

// EvalColumn evaluates the predicate over a full column slice, AND-ing the
// result into sel (sel[i] stays true only if row i satisfies p). This is the
// vectorized path used by the data router.
func (p Pred) EvalColumn(col []int64, sel []bool) {
	switch p.Op {
	case Lt:
		for i, v := range col {
			sel[i] = sel[i] && v < p.Literal
		}
	case Le:
		for i, v := range col {
			sel[i] = sel[i] && v <= p.Literal
		}
	case Gt:
		for i, v := range col {
			sel[i] = sel[i] && v > p.Literal
		}
	case Ge:
		for i, v := range col {
			sel[i] = sel[i] && v >= p.Literal
		}
	case Eq:
		for i, v := range col {
			sel[i] = sel[i] && v == p.Literal
		}
	case In:
		if len(p.Set) <= 4 {
			for i, v := range col {
				if !sel[i] {
					continue
				}
				ok := false
				for _, s := range p.Set {
					if v == s {
						ok = true
						break
					}
				}
				sel[i] = ok
			}
			return
		}
		for i, v := range col {
			sel[i] = sel[i] && p.InSet(v)
		}
	}
}

// String renders the predicate using col%d names; see StringWith for named
// rendering.
func (p Pred) String() string { return p.StringWith(nil) }

// StringWith renders the predicate using the provided column names.
func (p Pred) StringWith(names []string) string {
	name := fmt.Sprintf("col%d", p.Col)
	if names != nil && p.Col < len(names) {
		name = names[p.Col]
	}
	if p.Op == In {
		parts := make([]string, len(p.Set))
		for i, v := range p.Set {
			parts[i] = fmt.Sprintf("%d", v)
		}
		return fmt.Sprintf("%s IN (%s)", name, strings.Join(parts, ","))
	}
	return fmt.Sprintf("%s %s %d", name, p.Op, p.Literal)
}

// Equal reports structural equality of two predicates.
func (p Pred) Equal(q Pred) bool {
	if p.Col != q.Col || p.Op != q.Op {
		return false
	}
	if p.Op == In {
		if len(p.Set) != len(q.Set) {
			return false
		}
		for i := range p.Set {
			if p.Set[i] != q.Set[i] {
				return false
			}
		}
		return true
	}
	return p.Literal == q.Literal
}

// Key returns a canonical string key for de-duplicating predicates.
func (p Pred) Key() string { return p.String() }

// AdvCut is an advanced binary cut of the form (attr1, op, attr2), e.g.
// l_shipdate < l_commitdate (Sec. 6.1). Only range comparisons and equality
// between two columns are supported, matching the paper's examples.
type AdvCut struct {
	Left  int // left column ordinal
	Op    Op  // one of Lt, Le, Gt, Ge, Eq
	Right int // right column ordinal
}

// Eval evaluates the advanced cut on a row.
func (a AdvCut) Eval(row []int64) bool {
	l, r := row[a.Left], row[a.Right]
	switch a.Op {
	case Lt:
		return l < r
	case Le:
		return l <= r
	case Gt:
		return l > r
	case Ge:
		return l >= r
	case Eq:
		return l == r
	}
	return false
}

// String renders the advanced cut with positional column names.
func (a AdvCut) String() string { return a.StringWith(nil) }

// StringWith renders the advanced cut using the provided column names.
func (a AdvCut) StringWith(names []string) string {
	ln, rn := fmt.Sprintf("col%d", a.Left), fmt.Sprintf("col%d", a.Right)
	if names != nil {
		if a.Left < len(names) {
			ln = names[a.Left]
		}
		if a.Right < len(names) {
			rn = names[a.Right]
		}
	}
	return fmt.Sprintf("%s %s %s", ln, a.Op, rn)
}

// NodeKind discriminates query AST nodes.
type NodeKind int

// Query AST node kinds.
const (
	KindPred NodeKind = iota // leaf: unary predicate
	KindAdv                  // leaf: advanced-cut reference (index into tree's AC table)
	KindAnd                  // conjunction
	KindOr                   // disjunction
)

// Node is one node of a query's boolean expression tree.
type Node struct {
	Kind     NodeKind
	Pred     Pred    // when Kind == KindPred
	Adv      int     // advanced-cut index when Kind == KindAdv
	Children []*Node // when Kind is KindAnd or KindOr
}

// Query is a filter: an arbitrary conjunction/disjunction of unary
// predicates and advanced-cut references. A nil Root matches every row
// (full scan).
type Query struct {
	Root *Node
	// Name labels the query (e.g. "q19#3") for reporting.
	Name string
}

// NewPred wraps a predicate into an AST leaf.
func NewPred(p Pred) *Node { return &Node{Kind: KindPred, Pred: p} }

// NewAdv wraps an advanced-cut reference into an AST leaf.
func NewAdv(idx int) *Node { return &Node{Kind: KindAdv, Adv: idx} }

// And builds a conjunction node; single-child conjunctions collapse.
func And(children ...*Node) *Node {
	if len(children) == 1 {
		return children[0]
	}
	return &Node{Kind: KindAnd, Children: children}
}

// Or builds a disjunction node; single-child disjunctions collapse.
func Or(children ...*Node) *Node {
	if len(children) == 1 {
		return children[0]
	}
	return &Node{Kind: KindOr, Children: children}
}

// AndQ is a convenience constructor for a conjunctive query over predicates.
func AndQ(name string, preds ...Pred) Query {
	nodes := make([]*Node, len(preds))
	for i, p := range preds {
		nodes[i] = NewPred(p)
	}
	return Query{Root: And(nodes...), Name: name}
}

// Eval evaluates the query against a row; acs is the advanced-cut table the
// query's KindAdv leaves index into.
func (q Query) Eval(row []int64, acs []AdvCut) bool {
	if q.Root == nil {
		return true
	}
	return evalNode(q.Root, row, acs)
}

func evalNode(n *Node, row []int64, acs []AdvCut) bool {
	switch n.Kind {
	case KindPred:
		return n.Pred.Eval(row)
	case KindAdv:
		return acs[n.Adv].Eval(row)
	case KindAnd:
		for _, c := range n.Children {
			if !evalNode(c, row, acs) {
				return false
			}
		}
		return true
	case KindOr:
		for _, c := range n.Children {
			if evalNode(c, row, acs) {
				return true
			}
		}
		return false
	}
	return false
}

// Preds returns all unary predicates appearing anywhere in the query. These
// are the "pushed-down unary predicates" the paper extracts as candidate
// cuts (Sec. 3.4).
func (q Query) Preds() []Pred {
	var out []Pred
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		switch n.Kind {
		case KindPred:
			out = append(out, n.Pred)
		case KindAnd, KindOr:
			for _, c := range n.Children {
				walk(c)
			}
		}
	}
	walk(q.Root)
	return out
}

// AdvRefs returns the advanced-cut indexes referenced by the query.
func (q Query) AdvRefs() []int {
	var out []int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		switch n.Kind {
		case KindAdv:
			out = append(out, n.Adv)
		case KindAnd, KindOr:
			for _, c := range n.Children {
				walk(c)
			}
		}
	}
	walk(q.Root)
	return out
}

// String renders the query's boolean tree.
func (q Query) String() string { return q.StringWith(nil, nil) }

// StringWith renders the query with column names and the advanced-cut table.
func (q Query) StringWith(names []string, acs []AdvCut) string {
	if q.Root == nil {
		return "TRUE"
	}
	var render func(n *Node) string
	render = func(n *Node) string {
		switch n.Kind {
		case KindPred:
			return n.Pred.StringWith(names)
		case KindAdv:
			if acs != nil && n.Adv < len(acs) {
				return acs[n.Adv].StringWith(names)
			}
			return fmt.Sprintf("AC%d", n.Adv)
		case KindAnd, KindOr:
			sep := " AND "
			if n.Kind == KindOr {
				sep = " OR "
			}
			parts := make([]string, len(n.Children))
			for i, c := range n.Children {
				parts[i] = "(" + render(c) + ")"
			}
			return strings.Join(parts, sep)
		}
		return "?"
	}
	return render(q.Root)
}
