package expr

import "testing"

// TestRowStmtStringWith pins the canonical renderings plan caches and
// the cluster scatter key on: projection order, ORDER BY/LIMIT suffix,
// join qualification, per-side WHERE merging, and OR parenthesization.
func TestRowStmtStringWith(t *testing.T) {
	names := []string{"t", "cat", "v"}
	rq := &RowQuery{
		Cols:    []int{0, 2},
		Filter:  Query{Root: NewPred(Pred{Col: 0, Op: Ge, Literal: 10})},
		OrderBy: []OrderKey{{Pos: 1, Desc: true}, {Pos: 0}},
		Limit:   5,
	}
	got := RowStmt{Row: rq}.StringWith(names, nil)
	want := "SELECT t, v FROM t WHERE t >= 10 ORDER BY v DESC, t LIMIT 5"
	if got != want {
		t.Errorf("row: %q, want %q", got, want)
	}
	// No filter, no order, no limit: the bare projection.
	if got := (RowStmt{Row: &RowQuery{Cols: []int{1}}}).StringWith(names, nil); got != "SELECT cat FROM t" {
		t.Errorf("bare row: %q", got)
	}
	// Unnamed columns fall back to positional spellings.
	if got := (RowQuery{Cols: []int{7}}).StringWith(nil, nil); got != "SELECT col7 FROM t" {
		t.Errorf("positional row: %q", got)
	}

	jq := &JoinQuery{
		LeftTable: "a", RightTable: "b", LeftKey: 1, RightKey: 1,
		Cols: []ColRef{{Side: 0, Col: 0}, {Side: 1, Col: 2}},
		LeftFilter: Query{Root: Or(
			NewPred(Pred{Col: 2, Op: Gt, Literal: 4}),
			NewPred(Pred{Col: 2, Op: Lt, Literal: -4}),
		)},
		RightFilter: Query{Root: NewPred(Pred{Col: 0, Op: Lt, Literal: 9})},
		OrderBy:     []OrderKey{{Pos: 0}},
		Limit:       3,
	}
	got = RowStmt{Join: jq}.StringWith(names, nil)
	want = "SELECT a.t, b.v FROM a JOIN b ON a.cat = b.cat " +
		"WHERE ((a.v > 4) OR (a.v < -4)) AND b.t < 9 ORDER BY a.t LIMIT 3"
	if got != want {
		t.Errorf("join: %q, want %q", got, want)
	}
	// A filterless join renders with no WHERE clause at all.
	bare := &JoinQuery{LeftTable: "x", RightTable: "y", Cols: []ColRef{{Side: 1, Col: 1}}}
	if got := (RowStmt{Join: bare}).StringWith(names, nil); got != "SELECT y.cat FROM x JOIN y ON x.t = y.t" {
		t.Errorf("bare join: %q", got)
	}
}

func TestRowStmtName(t *testing.T) {
	if got := (RowStmt{Row: &RowQuery{Name: "q1"}}).Name(); got != "q1" {
		t.Errorf("row name: %q", got)
	}
	if got := (RowStmt{Join: &JoinQuery{Name: "j1"}}).Name(); got != "j1" {
		t.Errorf("join name: %q", got)
	}
}

// TestAggStringWith covers the aggregate renderings the same caches use.
func TestAggStringWith(t *testing.T) {
	names := []string{"t", "cat", "v"}
	aq := AggQuery{
		Aggs:    []Agg{{Func: AggCountStar}, {Func: AggSum, Col: 2}, {Func: AggAvg, Col: 0}},
		GroupBy: []int{1},
		Filter:  Query{Root: NewPred(Pred{Col: 0, Op: Lt, Literal: 100})},
	}
	want := "SELECT cat, COUNT(*), SUM(v), AVG(t) FROM t WHERE t < 100 GROUP BY cat"
	if got := aq.StringWith(names, nil); got != want {
		t.Errorf("agg: %q, want %q", got, want)
	}
	if got := (AggQuery{Aggs: []Agg{{Func: AggMin, Col: 1}, {Func: AggMax, Col: 1}}}).String(); got != "SELECT MIN(col1), MAX(col1) FROM t" {
		t.Errorf("ungrouped agg: %q", got)
	}
	for f, want := range map[AggFunc]string{
		AggCount: "COUNT", AggSum: "SUM", AggMin: "MIN", AggMax: "MAX", AggAvg: "AVG", AggFunc(99): "AggFunc(99)",
	} {
		if f.String() != want {
			t.Errorf("AggFunc(%d).String() = %q, want %q", int(f), f.String(), want)
		}
	}
	if (Agg{Func: AggCountStar}).NeedsColumn() || !(Agg{Func: AggSum, Col: 1}).NeedsColumn() {
		t.Error("NeedsColumn: COUNT(*) needs none, SUM needs its column")
	}
}
