package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Any() {
		t.Fatal("fresh bitset must be empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("count = %d, want 3", b.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Error("unexpected bit set")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Error("clear failed")
	}
}

func TestFullBitsetTailBits(t *testing.T) {
	// The final partial word must not contain phantom set bits.
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		b := NewFullBitset(n)
		if b.Count() != n {
			t.Errorf("NewFullBitset(%d).Count() = %d", n, b.Count())
		}
	}
}

func TestBitsetSetOps(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	if !a.Intersects(b) {
		t.Error("must intersect at bit 50")
	}
	c := a.Clone()
	c.IntersectWith(b)
	if c.Count() != 1 || !c.Get(50) {
		t.Error("intersect wrong")
	}
	d := a.Clone()
	d.SubtractWith(b)
	if d.Count() != 1 || !d.Get(1) {
		t.Error("subtract wrong")
	}
	e := a.Clone()
	e.UnionWith(b)
	if e.Count() != 3 {
		t.Error("union wrong")
	}
}

func TestBitsetCloneIsDeep(t *testing.T) {
	a := NewBitset(10)
	a.Set(3)
	b := a.Clone()
	b.Clear(3)
	if !a.Get(3) {
		t.Fatal("clone shares storage with original")
	}
}

func TestBitsetWordsRoundTrip(t *testing.T) {
	a := NewBitset(77)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		a.Set(rng.Intn(77))
	}
	b := FromWords(77, a.Words())
	if !a.Equal(b) {
		t.Fatal("words round trip lost bits")
	}
}

// Property: set-then-get holds, count matches a reference implementation.
func TestBitsetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		b := NewBitset(n)
		ref := make(map[int]bool)
		for i := 0; i < 100; i++ {
			k := rng.Intn(n)
			if rng.Intn(2) == 0 {
				b.Set(k)
				ref[k] = true
			} else {
				b.Clear(k)
				delete(ref, k)
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for k := range ref {
			if !b.Get(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
