// Aggregate query AST. The paper's engine answers every query as a bare
// match count; real analytical workloads (TPC-H Q1/Q6 style) carry a
// SELECT list of aggregates and an optional GROUP BY. AggQuery couples
// that aggregation spec with the filter Query the qd-tree already routes,
// so block skipping keeps paying off on the new query class.
package expr

import (
	"fmt"
	"strings"
)

// AggFunc identifies one supported aggregate function.
type AggFunc int

// Supported aggregates. COUNT(col) equals COUNT(*) in this system — every
// column value is a non-NULL dictionary-encoded int64 — but both spellings
// parse and render faithfully.
const (
	AggCountStar AggFunc = iota // COUNT(*)
	AggCount                    // COUNT(col)
	AggSum                      // SUM(col)
	AggMin                      // MIN(col)
	AggMax                      // MAX(col)
	AggAvg                      // AVG(col)
)

// String returns the SQL function name.
func (f AggFunc) String() string {
	switch f {
	case AggCountStar, AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// Agg is one aggregate of a SELECT list: a function over a column ordinal
// (Col is ignored for AggCountStar).
type Agg struct {
	Func AggFunc
	Col  int
}

// StringWith renders the aggregate using the provided column names.
func (a Agg) StringWith(names []string) string {
	if a.Func == AggCountStar {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, colName(a.Col, names))
}

// NeedsColumn reports whether evaluating the aggregate requires the
// column's data. COUNT(*) and COUNT(col) only count selected rows.
func (a Agg) NeedsColumn() bool {
	return a.Func != AggCountStar && a.Func != AggCount
}

// AggQuery is a full aggregation statement:
//
//	SELECT <group cols>, <aggs> FROM t [WHERE <filter>] [GROUP BY <cols>]
//
// Aggs holds the aggregates in SELECT-list order; GroupBy the grouping
// column ordinals in GROUP BY order. Filter.Root nil means no WHERE
// clause (aggregate over every row).
type AggQuery struct {
	Name    string
	Aggs    []Agg
	GroupBy []int
	Filter  Query
}

// String renders the statement with positional column names.
func (aq AggQuery) String() string { return aq.StringWith(nil, nil) }

// StringWith renders the statement in its canonical SQL spelling: group
// columns first (in GROUP BY order), then aggregates in SELECT order. The
// rendering is a parse fixpoint — re-parsing it yields a query that
// renders identically (see sqlparse.FuzzParseSelect).
func (aq AggQuery) StringWith(names []string, acs []AdvCut) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, g := range aq.GroupBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(colName(g, names))
	}
	for i, a := range aq.Aggs {
		if i > 0 || len(aq.GroupBy) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.StringWith(names))
	}
	sb.WriteString(" FROM t")
	if aq.Filter.Root != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(aq.Filter.StringWith(names, acs))
	}
	if len(aq.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range aq.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(colName(g, names))
		}
	}
	return sb.String()
}

func colName(c int, names []string) string {
	if names != nil && c >= 0 && c < len(names) {
		return names[c]
	}
	return fmt.Sprintf("col%d", c)
}
