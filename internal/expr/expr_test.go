package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPredEvalValue(t *testing.T) {
	cases := []struct {
		p    Pred
		v    int64
		want bool
	}{
		{Pred{Col: 0, Op: Lt, Literal: 10}, 9, true},
		{Pred{Col: 0, Op: Lt, Literal: 10}, 10, false},
		{Pred{Col: 0, Op: Le, Literal: 10}, 10, true},
		{Pred{Col: 0, Op: Le, Literal: 10}, 11, false},
		{Pred{Col: 0, Op: Gt, Literal: 10}, 11, true},
		{Pred{Col: 0, Op: Gt, Literal: 10}, 10, false},
		{Pred{Col: 0, Op: Ge, Literal: 10}, 10, true},
		{Pred{Col: 0, Op: Ge, Literal: 10}, 9, false},
		{Pred{Col: 0, Op: Eq, Literal: 10}, 10, true},
		{Pred{Col: 0, Op: Eq, Literal: 10}, -10, false},
		{NewIn(0, []int64{3, 1, 2}), 2, true},
		{NewIn(0, []int64{3, 1, 2}), 4, false},
	}
	for _, c := range cases {
		if got := c.p.EvalValue(c.v); got != c.want {
			t.Errorf("%v on %d: got %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestNegateComplement(t *testing.T) {
	// p and ¬p must partition every value: exactly one holds.
	for _, op := range []Op{Lt, Le, Gt, Ge} {
		p := Pred{Col: 0, Op: op, Literal: 5}
		n := Pred{Col: 0, Op: op.Negate(), Literal: 5}
		for v := int64(-2); v <= 12; v++ {
			if p.EvalValue(v) == n.EvalValue(v) {
				t.Errorf("op %v: value %d satisfies both or neither of p/¬p", op, v)
			}
		}
	}
}

func TestNegatePanicsOnEq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Negate(Eq) did not panic")
		}
	}()
	Eq.Negate()
}

func TestNewInDedupesAndSorts(t *testing.T) {
	p := NewIn(2, []int64{5, 1, 5, 3, 1})
	want := []int64{1, 3, 5}
	if len(p.Set) != len(want) {
		t.Fatalf("set %v, want %v", p.Set, want)
	}
	for i := range want {
		if p.Set[i] != want[i] {
			t.Fatalf("set %v, want %v", p.Set, want)
		}
	}
}

func TestEvalColumnMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	col := make([]int64, 500)
	for i := range col {
		col[i] = int64(rng.Intn(100))
	}
	preds := []Pred{
		{Col: 0, Op: Lt, Literal: 50},
		{Col: 0, Op: Le, Literal: 50},
		{Col: 0, Op: Gt, Literal: 50},
		{Col: 0, Op: Ge, Literal: 50},
		{Col: 0, Op: Eq, Literal: 7},
		NewIn(0, []int64{1, 2, 3}),
		NewIn(0, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}),
	}
	for _, p := range preds {
		sel := make([]bool, len(col))
		for i := range sel {
			sel[i] = true
		}
		p.EvalColumn(col, sel)
		for i, v := range col {
			if sel[i] != p.EvalValue(v) {
				t.Fatalf("%v: row %d (val %d) vectorized=%v scalar=%v", p, i, v, sel[i], p.EvalValue(v))
			}
		}
	}
}

func TestEvalColumnRespectsExistingSelection(t *testing.T) {
	col := []int64{1, 2, 3, 4}
	sel := []bool{false, true, false, true}
	p := Pred{Col: 0, Op: Ge, Literal: 0} // matches everything
	p.EvalColumn(col, sel)
	want := []bool{false, true, false, true}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("sel=%v, want %v", sel, want)
		}
	}
}

func TestQueryEval(t *testing.T) {
	// (a < 10 OR b > 90) AND c IN (0, 4)   — the Sec. 3.4 example.
	q := Query{Root: And(
		Or(
			NewPred(Pred{Col: 0, Op: Lt, Literal: 10}),
			NewPred(Pred{Col: 1, Op: Gt, Literal: 90}),
		),
		NewPred(NewIn(2, []int64{0, 4})),
	)}
	cases := []struct {
		row  []int64
		want bool
	}{
		{[]int64{5, 0, 0}, true},
		{[]int64{5, 0, 1}, false},
		{[]int64{50, 95, 4}, true},
		{[]int64{50, 80, 4}, false},
		{[]int64{50, 95, 5}, false},
	}
	for _, c := range cases {
		if got := q.Eval(c.row, nil); got != c.want {
			t.Errorf("row %v: got %v, want %v", c.row, got, c.want)
		}
	}
}

func TestQueryNilRootMatchesAll(t *testing.T) {
	q := Query{}
	if !q.Eval([]int64{1, 2, 3}, nil) {
		t.Fatal("nil-root query must match every row")
	}
}

func TestQueryPredsExtraction(t *testing.T) {
	q := Query{Root: And(
		Or(
			NewPred(Pred{Col: 0, Op: Lt, Literal: 10}),
			NewPred(Pred{Col: 1, Op: Gt, Literal: 90}),
		),
		NewPred(NewIn(2, []int64{0, 4})),
	)}
	preds := q.Preds()
	if len(preds) != 3 {
		t.Fatalf("got %d preds, want 3 (the paper extracts 3 cuts from this query)", len(preds))
	}
}

func TestAdvCutEval(t *testing.T) {
	// AC1 of the paper: l_shipdate < l_commitdate.
	ac := AdvCut{Left: 0, Op: Lt, Right: 1}
	if !ac.Eval([]int64{5, 10}) {
		t.Error("5 < 10 must hold")
	}
	if ac.Eval([]int64{10, 10}) {
		t.Error("10 < 10 must not hold")
	}
	q := Query{Root: NewAdv(0)}
	if !q.Eval([]int64{1, 2}, []AdvCut{ac}) {
		t.Error("query via AC table failed")
	}
	if got := q.AdvRefs(); len(got) != 1 || got[0] != 0 {
		t.Errorf("AdvRefs = %v, want [0]", got)
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Root: And(
		NewPred(Pred{Col: 0, Op: Lt, Literal: 10}),
		NewPred(Pred{Col: 1, Op: Eq, Literal: 3}),
	)}
	s := q.StringWith([]string{"a", "b"}, nil)
	if s != "(a < 10) AND (b = 3)" {
		t.Errorf("render = %q", s)
	}
}

func TestPredEqualAndKey(t *testing.T) {
	a := NewIn(1, []int64{2, 1})
	b := NewIn(1, []int64{1, 2})
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("IN predicates with same set must be equal with equal keys")
	}
	c := Pred{Col: 1, Op: Lt, Literal: 5}
	d := Pred{Col: 1, Op: Lt, Literal: 6}
	if c.Equal(d) || c.Key() == d.Key() {
		t.Error("different literals must not be equal")
	}
}

// Property: for range predicates, EvalValue agrees with direct comparison.
func TestPredProperty(t *testing.T) {
	f := func(v int64, lit int64) bool {
		lt := Pred{Op: Lt, Literal: lit}.EvalValue(v) == (v < lit)
		le := Pred{Op: Le, Literal: lit}.EvalValue(v) == (v <= lit)
		gt := Pred{Op: Gt, Literal: lit}.EvalValue(v) == (v > lit)
		ge := Pred{Op: Ge, Literal: lit}.EvalValue(v) == (v >= lit)
		return lt && le && gt && ge
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: And is the intersection of its children, Or the union.
func TestAndOrProperty(t *testing.T) {
	f := func(v int64, l1, l2 int64) bool {
		p1 := Pred{Col: 0, Op: Lt, Literal: l1}
		p2 := Pred{Col: 0, Op: Ge, Literal: l2}
		row := []int64{v}
		andQ := Query{Root: And(NewPred(p1), NewPred(p2))}
		orQ := Query{Root: Or(NewPred(p1), NewPred(p2))}
		okAnd := andQ.Eval(row, nil) == (p1.Eval(row) && p2.Eval(row))
		okOr := orQ.Eval(row, nil) == (p1.Eval(row) || p2.Eval(row))
		return okAnd && okOr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
