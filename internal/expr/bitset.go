package expr

import "math/bits"

// Bitset is a fixed-capacity bit vector used for categorical-column masks
// and advanced-cut vectors in qd-tree node descriptions (paper Table 1).
type Bitset struct {
	n     int
	words []uint64
}

// NewBitset returns a bitset of n bits, all zero.
func NewBitset(n int) *Bitset {
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// NewFullBitset returns a bitset of n bits, all one.
func NewFullBitset(n int) *Bitset {
	b := NewBitset(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (uint64(1) << uint(r)) - 1
	}
	return b
}

// Len returns the bit capacity.
func (b *Bitset) Len() int { return b.n }

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i to one.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear sets bit i to zero.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{n: b.n, words: append([]uint64(nil), b.words...)}
}

// IntersectWith zeroes every bit of b not set in other.
func (b *Bitset) IntersectWith(other *Bitset) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// SubtractWith zeroes every bit of b that is set in other.
func (b *Bitset) SubtractWith(other *Bitset) {
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// UnionWith sets every bit of b that is set in other.
func (b *Bitset) UnionWith(other *Bitset) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// Intersects reports whether b and other share any set bit.
func (b *Bitset) Intersects(other *Bitset) bool {
	for i := range b.words {
		if b.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (b *Bitset) None() bool { return !b.Any() }

// Equal reports whether two bitsets have identical contents.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Words exposes the underlying word storage for serialization.
func (b *Bitset) Words() []uint64 { return b.words }

// FromWords reconstructs a bitset from serialized state.
func FromWords(n int, words []uint64) *Bitset {
	return &Bitset{n: n, words: append([]uint64(nil), words...)}
}
