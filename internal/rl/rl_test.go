package rl

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/table"
	"repro/internal/workload"
)

func toCuts(ps []workload.Pred2Cut) []core.Cut {
	out := make([]core.Cut, len(ps))
	for i, p := range ps {
		if p.IsAdv {
			out[i] = core.AdvancedCut(p.Adv)
		} else {
			out[i] = core.UnaryCut(p.Pred)
		}
	}
	return out
}

func TestFeaturizerDim(t *testing.T) {
	s := table.MustSchema([]table.Column{
		{Name: "n", Kind: table.Numeric, Min: 0, Max: 99},    // span 101 -> 7 bits
		{Name: "c", Kind: table.Categorical, Dom: 5},         // 5 bits
		{Name: "m", Kind: table.Numeric, Min: 10, Max: 1033}, // span 1025 -> 11 bits
	})
	f := NewFeaturizer(s, 2)
	want := 2*7 + 5 + 2*11 + 2*2
	if f.Dim() != want {
		t.Fatalf("Dim = %d, want %d", f.Dim(), want)
	}
}

func TestFeaturizerEncodeDistinguishesStates(t *testing.T) {
	s := table.MustSchema([]table.Column{
		{Name: "n", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "c", Kind: table.Categorical, Dom: 3},
	})
	f := NewFeaturizer(s, 1)
	root := core.NewRootDesc(s, 1)
	child := root.Clone()
	child.Hi[0] = 50
	child.Masks[1].Clear(1)
	child.AdvMay.Clear(0)
	a := f.Encode(root, nil)
	b := f.Encode(child, nil)
	if len(a) != f.Dim() || len(b) != f.Dim() {
		t.Fatal("wrong encoded length")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different descriptions encoded identically")
	}
	// Values are strictly binary.
	for _, v := range append(append([]float64{}, a...), b...) {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary feature %v", v)
		}
	}
}

func TestFeaturizerEncodeReusesBuffer(t *testing.T) {
	s := table.MustSchema([]table.Column{{Name: "n", Kind: table.Numeric, Min: 0, Max: 7}})
	f := NewFeaturizer(s, 0)
	d := core.NewRootDesc(s, 0)
	buf := make([]float64, f.Dim())
	for i := range buf {
		buf[i] = 9
	}
	out := f.Encode(d, buf)
	for _, v := range out {
		if v != 0 && v != 1 {
			t.Fatal("stale buffer contents leaked into encoding")
		}
	}
}

func TestWoodblockValidation(t *testing.T) {
	spec := workload.Fig3(200, 1)
	if _, err := Build(spec.Table, nil, Options{MinSize: 0, Cuts: toCuts(spec.Cuts)}); err == nil {
		t.Error("MinSize 0 must error")
	}
	if _, err := Build(spec.Table, nil, Options{MinSize: 1}); err == nil {
		t.Error("empty action space must error")
	}
	empty := table.New(spec.Table.Schema, 0)
	if _, err := Build(empty, nil, Options{MinSize: 1, Cuts: toCuts(spec.Cuts)}); err == nil {
		t.Error("empty table must error")
	}
}

// TestWoodblockBeatsGreedyOnFig3 reproduces the paper's Sec. 5.1
// microbenchmark: the RL agent escapes the greedy trap on disjunctive
// queries and reaches a scan ratio far below greedy's ~50.5%.
func TestWoodblockBeatsGreedyOnFig3(t *testing.T) {
	spec := workload.Fig3(8000, 2)
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize:     40,
		Cuts:        toCuts(spec.Cuts),
		Queries:     spec.Queries,
		Hidden:      32,
		MaxEpisodes: 40,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	layout := cost.FromTree("rl", res.Tree, spec.Table)
	frac := layout.AccessedFraction(spec.Queries)
	if frac > 0.30 {
		t.Errorf("RL scan ratio %.3f; paper reaches ≈0.104, greedy is stuck at ≈0.505", frac)
	}
	if res.Episodes == 0 || len(res.Curve) != res.Episodes {
		t.Errorf("curve bookkeeping wrong: episodes=%d curve=%d", res.Episodes, len(res.Curve))
	}
	if res.BestRatio > frac+0.05 {
		t.Errorf("BestRatio %.3f inconsistent with deployed layout %.3f", res.BestRatio, frac)
	}
}

func TestWoodblockRespectsMinSize(t *testing.T) {
	spec := workload.Fig3(4000, 3)
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize:     150,
		Cuts:        toCuts(spec.Cuts),
		Queries:     spec.Queries,
		Hidden:      16,
		MaxEpisodes: 8,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bids := res.Tree.RouteTable(spec.Table)
	counts := map[int]int{}
	for _, b := range bids {
		counts[b]++
	}
	for b, n := range counts {
		if n < 150 {
			t.Errorf("block %d has %d rows < b=150", b, n)
		}
	}
}

func TestWoodblockLearningCurveMonotoneBest(t *testing.T) {
	spec := workload.Fig3(4000, 4)
	var curve []CurvePoint
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize:     40,
		Cuts:        toCuts(spec.Cuts),
		Queries:     spec.Queries,
		Hidden:      16,
		MaxEpisodes: 12,
		Seed:        2,
		OnEpisode: func(ep int, elapsed time.Duration, ratio, best float64) {
			curve = append(curve, CurvePoint{Episode: ep, Elapsed: elapsed, Ratio: ratio, Best: best})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != res.Episodes {
		t.Fatalf("callback count %d != episodes %d", len(curve), res.Episodes)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Best > curve[i-1].Best+1e-12 {
			t.Fatal("best ratio must be non-increasing")
		}
		if curve[i].Best > curve[i].Ratio+1e-12 && curve[i].Best > curve[i-1].Best {
			t.Fatal("best must track the minimum episode ratio")
		}
	}
}

func TestWoodblockPerQueryWeight(t *testing.T) {
	// With all query weights zeroed, every tree has reward 0; the agent
	// must still terminate and return a tree.
	spec := workload.Fig3(2000, 5)
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize:     100,
		Cuts:        toCuts(spec.Cuts),
		Queries:     spec.Queries,
		Hidden:      16,
		MaxEpisodes: 4,
		Seed:        3,
		PerQueryWeight: func(q int, skipped int64) int64 {
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree == nil {
		t.Fatal("no tree returned")
	}
}

func TestWoodblockTimeBudget(t *testing.T) {
	spec := workload.Fig3(2000, 6)
	start := time.Now()
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize:     40,
		Cuts:        toCuts(spec.Cuts),
		Queries:     spec.Queries,
		Hidden:      16,
		MaxEpisodes: 100000,
		TimeBudget:  50 * time.Millisecond,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("time budget ignored")
	}
	if res.Episodes == 0 {
		t.Error("no episodes ran")
	}
}

// Property-ish check: the sum of leaf counts of the returned tree always
// equals the table size — routing loses nothing whatever tree RL built.
func TestWoodblockTreeRoutesEverything(t *testing.T) {
	spec := workload.Fig4(100, 7)
	res, err := Build(spec.Table, spec.ACs, Options{
		MinSize:     30,
		Cuts:        toCuts(spec.Cuts),
		Queries:     spec.Queries,
		Hidden:      16,
		MaxEpisodes: 6,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Tree.RouteTable(spec.Table)
	total := 0
	for _, leaf := range res.Tree.Leaves() {
		total += leaf.Count
	}
	if total != spec.Table.N {
		t.Fatalf("leaf counts sum %d, want %d", total, spec.Table.N)
	}
}

func TestWoodblockWarmStart(t *testing.T) {
	spec := workload.Fig3(3000, 9)
	opts := Options{
		MinSize:     60,
		Cuts:        toCuts(spec.Cuts),
		Queries:     spec.Queries,
		Hidden:      16,
		MaxEpisodes: 8,
		Seed:        11,
	}
	first, err := Build(spec.Table, spec.ACs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Model) == 0 {
		t.Fatal("no model checkpoint returned")
	}
	// Resume training from the checkpoint.
	opts.InitialModel = first.Model
	second, err := Build(spec.Table, spec.ACs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Tree == nil {
		t.Fatal("warm-started run produced no tree")
	}
	// A shape mismatch must be rejected.
	other := workload.Fig4(200, 9)
	_, err = Build(other.Table, other.ACs, Options{
		MinSize: 30, Cuts: toCuts(other.Cuts), Queries: other.Queries,
		Hidden: 16, MaxEpisodes: 2, InitialModel: first.Model})
	if err == nil {
		t.Fatal("mismatched warm-start model must error")
	}
}
