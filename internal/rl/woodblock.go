package rl

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/nn"
	"repro/internal/table"
)

// Options configure the Woodblock agent. Zero values select the defaults
// noted per field.
type Options struct {
	// MinSize is b in rows of the table passed to Build (the agent is
	// usually run on a 0.1%–1% sample, Sec. 5.2.1; scale b accordingly).
	MinSize int
	// Cuts is the action space A: the candidate cut set (Sec. 3.4).
	Cuts []core.Cut
	// Queries is the target workload W.
	Queries []expr.Query

	Hidden            int           // trunk width (paper: 512; default 128)
	LR                float64       // Adam learning rate (default 3e-4)
	Clip              float64       // PPO clip ε (default 0.2)
	Entropy           float64       // entropy bonus coefficient (default 1e-2)
	ValueCoef         float64       // value loss coefficient (default 0.5)
	Epochs            int           // PPO epochs per update (default 3)
	EpisodesPerUpdate int           // episodes per PPO batch (default 4)
	MaxEpisodes       int           // episode budget (default 64)
	TimeBudget        time.Duration // optional wall-clock budget
	MaxLeaves         int           // per-episode leaf cap (default 4096)
	Seed              int64
	// Greedy warm start is not used: the paper stresses that random
	// initial trees already beat workload-oblivious baselines (Sec. 7.6).

	// OnEpisode, when non-nil, observes the learning curve: called after
	// each episode with the episode index, elapsed time, that episode's
	// scan ratio, and the best ratio so far (Fig. 8).
	OnEpisode func(ep int, elapsed time.Duration, ratio, best float64)
	// InitialModel, when non-nil, warm-starts the policy/value network
	// from a checkpoint produced by a previous run's Result.Model. The
	// feature and action dimensions must match.
	InitialModel []byte
	// PerQueryWeight optionally re-weights each query's skipped-tuple
	// contribution in the reward (two-tree extension, Sec. 6.3).
	PerQueryWeight func(q int, skipped int64) int64
}

func (o *Options) defaults() {
	if o.Hidden == 0 {
		o.Hidden = 128
	}
	if o.LR == 0 {
		o.LR = 3e-4
	}
	if o.Clip == 0 {
		o.Clip = 0.2
	}
	if o.Entropy == 0 {
		o.Entropy = 1e-2
	}
	if o.ValueCoef == 0 {
		o.ValueCoef = 0.5
	}
	if o.Epochs == 0 {
		o.Epochs = 3
	}
	if o.EpisodesPerUpdate == 0 {
		o.EpisodesPerUpdate = 4
	}
	if o.MaxEpisodes == 0 {
		o.MaxEpisodes = 64
	}
	if o.MaxLeaves == 0 {
		o.MaxLeaves = 4096
	}
}

// CurvePoint is one learning-curve sample (Fig. 8).
type CurvePoint struct {
	Episode int
	Elapsed time.Duration
	Ratio   float64 // this episode's scan ratio on the build table
	Best    float64 // best ratio achieved so far
}

// Result reports the best tree found and the learning curve.
type Result struct {
	Tree      *core.Tree
	BestRatio float64
	Curve     []CurvePoint
	Episodes  int
	// Model is the trained network checkpoint; feed it back through
	// Options.InitialModel to continue training on drifted data.
	Model []byte
}

// step is one (state, action, reward) tuple of an episode; the node's
// reward is attributed after the tree completes (Sec. 5.2.2).
type step struct {
	feat   []float64
	legal  []bool
	action int
	logp   float64
	ret    float64 // normalized reward R((n,p))
	node   *epNode
}

// epNode tracks per-episode node state for reward backpropagation.
type epNode struct {
	rows        int
	skipped     int64 // S(n): skipped tuples under this node
	left, right *epNode
	leafDesc    core.Desc
}

// agent holds everything shared across episodes.
type agent struct {
	tbl   *table.Table
	acs   []expr.AdvCut
	opt   Options
	feat  *Featurizer
	net   *nn.PolicyValueNet
	rng   *rand.Rand
	eval  *cost.Evaluator
	inBuf []bool
	// rootCnt is built once and shared across episodes: Counter.Split
	// never mutates its receiver, and re-sorting every episode would
	// dominate construction time.
	rootCnt *core.Counter
}

// Build trains Woodblock on the given table (normally a sample) and
// returns the best qd-tree constructed within the budget.
func Build(tbl *table.Table, acs []expr.AdvCut, opt Options) (*Result, error) {
	opt.defaults()
	if opt.MinSize < 1 {
		return nil, fmt.Errorf("rl: MinSize must be >= 1, got %d", opt.MinSize)
	}
	if len(opt.Cuts) == 0 {
		return nil, fmt.Errorf("rl: empty action space")
	}
	if tbl.N == 0 {
		return nil, fmt.Errorf("rl: empty table")
	}
	for _, c := range opt.Cuts {
		if c.IsAdv && c.Adv >= len(acs) {
			return nil, fmt.Errorf("rl: cut references AC%d beyond table of %d", c.Adv, len(acs))
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	f := NewFeaturizer(tbl.Schema, len(acs))
	a := &agent{
		tbl:   tbl,
		acs:   acs,
		opt:   opt,
		feat:  f,
		net:   nn.NewPolicyValueNet(f.Dim(), opt.Hidden, len(opt.Cuts), rng),
		rng:   rng,
		eval:  &cost.Evaluator{Queries: opt.Queries},
		inBuf: make([]bool, tbl.N),
	}
	a.rootCnt = core.NewCounter(tbl, acs, opt.Cuts, nil)
	if opt.InitialModel != nil {
		net, err := nn.UnmarshalNet(opt.InitialModel)
		if err != nil {
			return nil, fmt.Errorf("rl: warm start: %w", err)
		}
		if net.In != f.Dim() || net.Actions != len(opt.Cuts) {
			return nil, fmt.Errorf("rl: warm-start model shape (%d in, %d actions) does not match featurizer (%d) / cuts (%d)",
				net.In, net.Actions, f.Dim(), len(opt.Cuts))
		}
		a.net = net
	}

	res := &Result{BestRatio: math.Inf(1)}
	start := time.Now()
	var batch []step
	for ep := 0; ep < opt.MaxEpisodes; ep++ {
		if opt.TimeBudget > 0 && time.Since(start) > opt.TimeBudget && res.Tree != nil {
			break
		}
		tree, steps := a.episode()
		ratio := a.assignRewards(steps)
		if ratio < res.BestRatio {
			res.BestRatio = ratio
			res.Tree = tree
		}
		res.Episodes++
		pt := CurvePoint{Episode: ep, Elapsed: time.Since(start), Ratio: ratio, Best: res.BestRatio}
		res.Curve = append(res.Curve, pt)
		if opt.OnEpisode != nil {
			opt.OnEpisode(ep, pt.Elapsed, ratio, res.BestRatio)
		}
		batch = append(batch, steps...)
		if (ep+1)%opt.EpisodesPerUpdate == 0 && len(batch) > 0 {
			a.update(batch)
			batch = batch[:0]
		}
	}
	if res.Tree == nil {
		return nil, fmt.Errorf("rl: no tree produced (budget too small?)")
	}
	model, err := a.net.Marshal()
	if err != nil {
		return nil, fmt.Errorf("rl: checkpoint: %w", err)
	}
	res.Model = model
	return res, nil
}

// episode constructs one qd-tree by sampling the current policy
// (Sec. 5.2: take node off queue, evaluate policy, sample cut, append
// children).
func (a *agent) episode() (*core.Tree, []step) {
	tree := core.NewTree(a.tbl.Schema, a.acs)
	type qitem struct {
		node *core.Node
		cnt  *core.Counter
		en   *epNode
	}
	rootEp := &epNode{rows: a.rootCnt.Size()}
	queue := []qitem{{tree.Root, a.rootCnt, rootEp}}
	var steps []step
	legal := make([]bool, len(a.opt.Cuts))
	leaves := 0
	var probs []float64

	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		nLegal := 0
		if leaves+len(queue) < a.opt.MaxLeaves {
			for i, cut := range a.opt.Cuts {
				l := it.cnt.CountLeft(cut)
				r := it.cnt.Size() - l
				ok := l >= a.opt.MinSize && r >= a.opt.MinSize
				legal[i] = ok
				if ok {
					nLegal++
				}
			}
		} else {
			for i := range legal {
				legal[i] = false
			}
		}
		if nLegal == 0 {
			// No legal cut: n becomes a leaf (Sec. 5.2.1).
			it.en.leafDesc = a.tightened(it.node.Desc, it.cnt.Rows)
			leaves++
			continue
		}
		feat := a.feat.Encode(it.node.Desc, nil)
		cache := a.net.Forward(feat, nil)
		probs = nn.MaskedSoftmax(cache.Logits, legal, probs)
		action := nn.Sample(probs, a.rng)
		cut := a.opt.Cuts[action]

		lNode, rNode := tree.Split(it.node, cut)
		lCnt, rCnt := it.cnt.Split(cut, a.inBuf)
		lNode.Count, rNode.Count = lCnt.Size(), rCnt.Size()
		lEp := &epNode{rows: lCnt.Size()}
		rEp := &epNode{rows: rCnt.Size()}
		it.en.left, it.en.right = lEp, rEp

		steps = append(steps, step{
			feat:   feat,
			legal:  append([]bool(nil), legal...),
			action: action,
			logp:   math.Log(probs[action] + 1e-12),
			node:   it.en,
		})
		queue = append(queue, qitem{lNode, lCnt, lEp}, qitem{rNode, rCnt, rEp})
	}
	tree.Root.Count = a.tbl.N
	tree.Leaves()
	return tree, steps
}

// tightened computes the min-max/mask hull of the rows under the node's
// logical description — the block metadata the deployed layout will have
// (Sec. 3.2 freezing), which makes rewards reflect deployed skipping.
func (a *agent) tightened(d core.Desc, rows []int) core.Desc {
	out := d.Clone()
	if len(rows) == 0 {
		for c := range out.Lo {
			out.Hi[c] = out.Lo[c]
		}
		return out
	}
	for c, col := range a.tbl.Schema.Cols {
		lo, hi, _ := a.tbl.MinMax(c, rows)
		out.Lo[c], out.Hi[c] = lo, hi+1
		if col.Kind == table.Categorical {
			m := expr.NewBitset(int(col.Dom))
			src := a.tbl.Cols[c]
			for _, r := range rows {
				if v := src[r]; v >= 0 && v < col.Dom {
					m.Set(int(v))
				}
			}
			out.Masks[c] = m
		}
	}
	if len(a.acs) > 0 {
		may, mayNot := expr.NewBitset(len(a.acs)), expr.NewBitset(len(a.acs))
		row := make([]int64, a.tbl.Schema.NumCols())
		for _, r := range rows {
			row = a.tbl.Row(r, row)
			for i, ac := range a.acs {
				if ac.Eval(row) {
					may.Set(i)
				} else {
					mayNot.Set(i)
				}
			}
		}
		out.AdvMay, out.AdvMayNot = may, mayNot
	}
	return out
}

// leafSkip computes C(leaf): tuples × queries skipped, optionally
// re-weighted per query (two-tree extension).
func (a *agent) leafSkip(d core.Desc, size int) int64 {
	if a.opt.PerQueryWeight == nil {
		return a.eval.BlockSkip(d, size)
	}
	var total int64
	for qi, q := range a.opt.Queries {
		if !d.QueryMayMatch(q) {
			total += a.opt.PerQueryWeight(qi, int64(size))
		}
	}
	return total
}

// assignRewards computes S(n) bottom-up and the per-step normalized reward
// R((n,p)) = S(n)/(|W|·|n.records|) (Sec. 5.2.2). It returns the episode's
// scan ratio on the build table.
func (a *agent) assignRewards(steps []step) float64 {
	var fill func(n *epNode) int64
	fill = func(n *epNode) int64 {
		if n.left == nil {
			n.skipped = a.leafSkip(n.leafDesc, n.rows)
			return n.skipped
		}
		n.skipped = fill(n.left) + fill(n.right)
		return n.skipped
	}
	var rootSkip int64
	if len(steps) > 0 {
		rootSkip = fill(steps[0].node)
	} else {
		// Single-leaf episode: nothing to learn from, ratio is 1.
		return 1.0
	}
	w := float64(len(a.opt.Queries))
	for i := range steps {
		n := steps[i].node
		den := w * float64(n.rows)
		if den == 0 {
			steps[i].ret = 0
			continue
		}
		steps[i].ret = float64(n.skipped) / den
	}
	total := w * float64(a.tbl.N)
	if total == 0 {
		return 1.0
	}
	return 1.0 - float64(rootSkip)/total
}

// update runs PPO (clipped surrogate, Sec. 5.2) over the collected steps.
func (a *agent) update(batch []step) {
	// Advantages: R − V(s), normalized across the batch.
	adv := make([]float64, len(batch))
	caches := make([]*nn.Cache, len(batch))
	var mean, m2 float64
	for i := range batch {
		c := a.net.Forward(batch[i].feat, nil)
		caches[i] = c
		adv[i] = batch[i].ret - c.Value
		mean += adv[i]
	}
	mean /= float64(len(batch))
	for _, v := range adv {
		m2 += (v - mean) * (v - mean)
	}
	std := math.Sqrt(m2/float64(len(batch))) + 1e-8
	for i := range adv {
		adv[i] = (adv[i] - mean) / std
	}

	order := make([]int, len(batch))
	for i := range order {
		order[i] = i
	}
	dLogits := make([]float64, len(a.opt.Cuts))
	var probs []float64
	for epoch := 0; epoch < a.opt.Epochs; epoch++ {
		a.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		a.net.ZeroGrad()
		for _, idx := range order {
			st := &batch[idx]
			c := a.net.Forward(st.feat, caches[idx])
			probs = nn.MaskedSoftmax(c.Logits, st.legal, probs)
			p := probs[st.action]
			logp := math.Log(p + 1e-12)
			ratio := math.Exp(logp - st.logp)
			A := adv[idx]

			// Clipped surrogate: loss = max(−A·r, −A·clip(r)).
			l1 := -A * ratio
			var rc float64
			if ratio < 1-a.opt.Clip {
				rc = 1 - a.opt.Clip
			} else if ratio > 1+a.opt.Clip {
				rc = 1 + a.opt.Clip
			} else {
				rc = ratio
			}
			l2 := -A * rc
			var dlogp float64
			if l1 >= l2 {
				dlogp = -A * ratio // d(−A·r)/dlogp = −A·r
			}
			// Entropy bonus: loss −= β·H; dH/dz_k = −p_k(log p_k + H).
			H := nn.Entropy(probs)
			scale := 1.0 / float64(len(batch))
			for k := range dLogits {
				dLogits[k] = 0
				if !st.legal[k] {
					continue
				}
				pk := probs[k]
				// ∂logp(a)/∂z_k = 1[k=a] − p_k.
				var g float64
				if k == st.action {
					g = dlogp * (1 - pk)
				} else {
					g = dlogp * (-pk)
				}
				// Entropy gradient (descending −β·H).
				if pk > 0 {
					g += a.opt.Entropy * pk * (math.Log(pk) + H)
				}
				dLogits[k] = g * scale
			}
			dV := a.opt.ValueCoef * (c.Value - st.ret) * scale
			a.net.Backward(c, dLogits, dV)
		}
		a.net.Step(a.opt.LR)
	}
}
