// Package rl implements Woodblock (Sec. 5), the deep-RL qd-tree
// constructor: a tree-structured MDP whose states are qd-tree nodes and
// whose actions are candidate cuts, trained with PPO on per-node
// normalized skipping rewards.
package rl

import (
	"math/bits"

	"repro/internal/core"
	"repro/internal/table"
)

// Featurizer converts a node's semantic description into the network input
// vector. Following Sec. 5.2.3, the state is the concatenation of n.range
// and n.categorical_mask, binary-encoded: each numeric interval endpoint
// becomes ceil(log2 |Dom|) bits, each categorical mask contributes |Dom|
// bits directly, and each advanced cut contributes its (may, mayNot) pair.
type Featurizer struct {
	schema  *table.Schema
	numAC   int
	colBits []int // bits per numeric column endpoint (0 for categorical)
	dim     int
}

// NewFeaturizer computes the feature layout for a schema.
func NewFeaturizer(s *table.Schema, numAC int) *Featurizer {
	f := &Featurizer{schema: s, numAC: numAC, colBits: make([]int, s.NumCols())}
	dim := 0
	for c, col := range s.Cols {
		if col.Kind == table.Categorical {
			dim += int(col.Dom)
			continue
		}
		span := uint64(col.Max - col.Min + 2)
		nb := bits.Len64(span)
		f.colBits[c] = nb
		dim += 2 * nb // Lo and Hi endpoints
	}
	dim += 2 * numAC
	f.dim = dim
	return f
}

// Dim returns the feature vector length.
func (f *Featurizer) Dim() int { return f.dim }

// Encode writes the feature vector for a description into dst (allocated
// when nil) and returns it.
func (f *Featurizer) Encode(d core.Desc, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, f.dim)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	pos := 0
	for c, col := range f.schema.Cols {
		if col.Kind == table.Categorical {
			m := d.Masks[c]
			for i := 0; i < int(col.Dom); i++ {
				if m.Get(i) {
					dst[pos+i] = 1
				}
			}
			pos += int(col.Dom)
			continue
		}
		nb := f.colBits[c]
		lo := uint64(d.Lo[c] - col.Min)
		hi := uint64(d.Hi[c] - col.Min)
		for b := 0; b < nb; b++ {
			if lo&(1<<uint(b)) != 0 {
				dst[pos+b] = 1
			}
			if hi&(1<<uint(b)) != 0 {
				dst[pos+nb+b] = 1
			}
		}
		pos += 2 * nb
	}
	for i := 0; i < f.numAC; i++ {
		if d.AdvMay.Get(i) {
			dst[pos] = 1
		}
		if d.AdvMayNot.Get(i) {
			dst[pos+1] = 1
		}
		pos += 2
	}
	return dst
}
