// Package baselines implements the industrial partitioning baselines of
// Sec. 7.3: the random shuffler (the TPC-H baseline) and range
// partitioning on an ingest-time column (the deployed default for the
// ErrorLog workloads). Both produce row→block assignments evaluated with
// the same cost.Layout machinery as qd-trees.
package baselines

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cost"
	"repro/internal/expr"
	"repro/internal/table"
)

// Random shuffles rows into numBlocks fixed-size blocks ("a partitioner
// that simply shuffles records into fixed-size blocks").
func Random(tbl *table.Table, numBlocks int, acs []expr.AdvCut, seed int64) (*cost.Layout, error) {
	if numBlocks < 1 || numBlocks > tbl.N {
		return nil, fmt.Errorf("baselines: numBlocks %d out of range for %d rows", numBlocks, tbl.N)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(tbl.N)
	bids := make([]int, tbl.N)
	per := (tbl.N + numBlocks - 1) / numBlocks
	for pos, r := range perm {
		bids[r] = pos / per
	}
	l := cost.NewLayout("random", tbl, bids, numBlocks, acs)
	// Deployed baselines carry plain min-max zone maps, not dictionary
	// masks (Sec. 7.3); qd-tree's semantic descriptions are its edge.
	l.DisableDictionaryFiltering()
	return l, nil
}

// Range sorts rows by the given column (typically ingest time) and chunks
// them into numBlocks equal-size blocks.
func Range(tbl *table.Table, col int, numBlocks int, acs []expr.AdvCut) (*cost.Layout, error) {
	if numBlocks < 1 || numBlocks > tbl.N {
		return nil, fmt.Errorf("baselines: numBlocks %d out of range for %d rows", numBlocks, tbl.N)
	}
	if col < 0 || col >= tbl.Schema.NumCols() {
		return nil, fmt.Errorf("baselines: column %d out of range", col)
	}
	order := make([]int, tbl.N)
	for i := range order {
		order[i] = i
	}
	vals := tbl.Cols[col]
	sort.SliceStable(order, func(i, j int) bool { return vals[order[i]] < vals[order[j]] })
	bids := make([]int, tbl.N)
	per := (tbl.N + numBlocks - 1) / numBlocks
	for pos, r := range order {
		bids[r] = pos / per
	}
	l := cost.NewLayout("range", tbl, bids, numBlocks, acs)
	l.DisableDictionaryFiltering()
	return l, nil
}
