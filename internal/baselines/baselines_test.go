package baselines

import (
	"testing"

	"repro/internal/workload"
)

func TestRandomLayout(t *testing.T) {
	spec := workload.Fig3(1000, 1)
	l, err := Random(spec.Table, 10, spec.ACs, 42)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumBlocks() != 10 {
		t.Fatalf("blocks = %d", l.NumBlocks())
	}
	total := 0
	for _, n := range l.Counts {
		total += n
		if n != 100 {
			t.Errorf("block size %d, want 100 (fixed-size shuffle)", n)
		}
	}
	if total != 1000 {
		t.Fatalf("total %d", total)
	}
	// Random blocks should have near-full min-max hulls, so a selective
	// range query accesses ~everything: the Table 2 baseline behaviour.
	frac := l.AccessedFraction(spec.Queries)
	if frac < 0.9 {
		t.Errorf("random layout fraction %.3f; expected near 1.0", frac)
	}
}

func TestRangeLayoutSkipsOnPartitionColumn(t *testing.T) {
	spec := workload.Fig3(1000, 2)
	disk := spec.Table.Schema.MustCol("disk")
	l, err := Range(spec.Table, disk, 10, spec.ACs)
	if err != nil {
		t.Fatal(err)
	}
	// Q2 (disk < 100, ~1% of rows) must touch only the first range block.
	q2 := spec.Queries[1]
	if acc := l.AccessedTuples(q2); acc > 100 {
		t.Errorf("range layout accessed %d tuples for the disk query, want <= one block", acc)
	}
	// Blocks are contiguous in disk order: each block's interval must not
	// overlap the next block's (they partition the sorted order).
	for b := 1; b < l.NumBlocks(); b++ {
		if l.Descs[b].Lo[disk] < l.Descs[b-1].Lo[disk] {
			t.Errorf("block %d starts before block %d", b, b-1)
		}
	}
}

func TestBaselineValidation(t *testing.T) {
	spec := workload.Fig3(100, 3)
	if _, err := Random(spec.Table, 0, nil, 1); err == nil {
		t.Error("0 blocks must error")
	}
	if _, err := Random(spec.Table, 101, nil, 1); err == nil {
		t.Error("more blocks than rows must error")
	}
	if _, err := Range(spec.Table, -1, 10, nil); err == nil {
		t.Error("bad column must error")
	}
	if _, err := Range(spec.Table, 0, 0, nil); err == nil {
		t.Error("0 blocks must error")
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	spec := workload.Fig3(500, 4)
	a, _ := Random(spec.Table, 5, nil, 7)
	b, _ := Random(spec.Table, 5, nil, 7)
	for i := range a.BIDs {
		if a.BIDs[i] != b.BIDs[i] {
			t.Fatal("same seed produced different layouts")
		}
	}
	c, _ := Random(spec.Table, 5, nil, 8)
	same := true
	for i := range a.BIDs {
		if a.BIDs[i] != c.BIDs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical layouts")
	}
}
