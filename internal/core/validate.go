package core

import (
	"fmt"

	"repro/internal/table"
)

// Validate checks the structural invariants of a qd-tree:
//
//   - every internal node has exactly two children and a cut referencing
//     a valid column or advanced-cut index;
//   - node IDs are unique;
//   - child descriptions are contained in their parent's (cuts only ever
//     restrict a subspace — this is what makes skipping monotone);
//   - leaf block IDs are dense 0..k-1 in left-to-right order;
//   - when counts are populated, each internal node's count equals the
//     sum of its children's.
//
// Deserialized or hand-assembled trees should be validated before
// deployment; constructors produce valid trees by construction.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("core: tree has no root")
	}
	seen := make(map[int]bool)
	leafID := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if seen[n.ID] {
			return fmt.Errorf("core: duplicate node ID %d", n.ID)
		}
		seen[n.ID] = true
		if (n.Left == nil) != (n.Right == nil) {
			return fmt.Errorf("core: node %d has exactly one child", n.ID)
		}
		if n.IsLeaf() {
			if n.Left != nil {
				return fmt.Errorf("core: leaf %d has children", n.ID)
			}
			if n.BlockID != leafID {
				return fmt.Errorf("core: leaf %d has block ID %d, want %d (left-to-right dense)", n.ID, n.BlockID, leafID)
			}
			leafID++
			return nil
		}
		if n.Left == nil {
			return fmt.Errorf("core: internal node %d missing children", n.ID)
		}
		if n.Cut.IsAdv {
			if n.Cut.Adv < 0 || n.Cut.Adv >= len(t.ACs) {
				return fmt.Errorf("core: node %d cut references AC%d of %d", n.ID, n.Cut.Adv, len(t.ACs))
			}
		} else {
			col := n.Cut.Pred.Col
			if col < 0 || col >= t.Schema.NumCols() {
				return fmt.Errorf("core: node %d cut on column %d of %d", n.ID, col, t.Schema.NumCols())
			}
		}
		for _, child := range []*Node{n.Left, n.Right} {
			if err := descContained(child.Desc, n.Desc); err != nil {
				return fmt.Errorf("core: node %d child %d: %w", n.ID, child.ID, err)
			}
			if child.Depth != n.Depth+1 {
				return fmt.Errorf("core: node %d child %d depth %d, want %d", n.ID, child.ID, child.Depth, n.Depth+1)
			}
		}
		if n.Count != 0 && n.Left.Count+n.Right.Count != n.Count {
			return fmt.Errorf("core: node %d count %d != children %d+%d",
				n.ID, n.Count, n.Left.Count, n.Right.Count)
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	return walk(t.Root)
}

// descContained verifies child ⊆ parent for every description component.
func descContained(child, parent Desc) error {
	for c := range child.Lo {
		// Empty child intervals are fine (provably empty leaf).
		if child.Lo[c] >= child.Hi[c] {
			continue
		}
		if child.Lo[c] < parent.Lo[c] || child.Hi[c] > parent.Hi[c] {
			return fmt.Errorf("interval [%d,%d) of column %d escapes parent [%d,%d)",
				child.Lo[c], child.Hi[c], c, parent.Lo[c], parent.Hi[c])
		}
	}
	for c, m := range child.Masks {
		pm, ok := parent.Masks[c]
		if !ok {
			return fmt.Errorf("mask for column %d missing on parent", c)
		}
		probe := m.Clone()
		probe.SubtractWith(pm)
		if probe.Any() {
			return fmt.Errorf("mask of column %d has bits outside parent", c)
		}
	}
	probe := child.AdvMay.Clone()
	probe.SubtractWith(parent.AdvMay)
	if probe.Any() {
		return fmt.Errorf("advMay escapes parent")
	}
	probe = child.AdvMayNot.Clone()
	probe.SubtractWith(parent.AdvMayNot)
	if probe.Any() {
		return fmt.Errorf("advMayNot escapes parent")
	}
	return nil
}

// CheckSchema verifies that a table is compatible with the tree's schema
// (same column count, kinds, and categorical domains) before routing.
func (t *Tree) CheckSchema(tbl *table.Table) error {
	if tbl.Schema.NumCols() != t.Schema.NumCols() {
		return fmt.Errorf("core: table has %d columns, tree has %d", tbl.Schema.NumCols(), t.Schema.NumCols())
	}
	for c := range t.Schema.Cols {
		tc, oc := t.Schema.Cols[c], tbl.Schema.Cols[c]
		if tc.Kind != oc.Kind {
			return fmt.Errorf("core: column %q kind mismatch (%v vs %v)", tc.Name, oc.Kind, tc.Kind)
		}
		if tc.Kind == table.Categorical && tc.Dom != oc.Dom {
			return fmt.Errorf("core: column %q domain mismatch (%d vs %d)", tc.Name, oc.Dom, tc.Dom)
		}
	}
	return nil
}
