package core

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/table"
)

// Counter answers "how many of this node's rows satisfy cut c?" in
// sub-linear time for range cuts. Both constructors use it: the greedy
// builder to enforce |n_p| ≥ b, |n_¬p| ≥ b (Algorithm 1), and the RL agent
// to compute legal-action masks (Sec. 5.2.1).
//
// For numeric columns it keeps per-column row-index arrays sorted by value,
// partitioned stably as the tree splits (so sorting happens once, at the
// root). For categorical columns it keeps a value histogram per node.
type Counter struct {
	tbl  *table.Table
	acs  []expr.AdvCut
	Rows []int
	// sortedIdx[c] holds Rows reordered so tbl.Cols[c] is ascending;
	// present only for numeric columns that appear in cuts.
	sortedIdx map[int][]int32
	// hist[c] is the per-value count for categorical cut columns.
	hist map[int][]int32
	// advTrue[i] counts rows satisfying advanced cut i.
	advTrue []int
}

// CounterColumns inspects the candidate cuts and returns the numeric and
// categorical column sets a Counter must index.
func CounterColumns(schema *table.Schema, cuts []Cut) (numeric, categorical []int) {
	seenN := make(map[int]bool)
	seenC := make(map[int]bool)
	for _, c := range cuts {
		if c.IsAdv {
			continue
		}
		col := c.Pred.Col
		if schema.Cols[col].Kind == table.Categorical {
			if !seenC[col] {
				seenC[col] = true
				categorical = append(categorical, col)
			}
		} else if !seenN[col] {
			seenN[col] = true
			numeric = append(numeric, col)
		}
	}
	sort.Ints(numeric)
	sort.Ints(categorical)
	return numeric, categorical
}

// NewCounter indexes the given rows (nil = all rows of tbl) for the columns
// used by the cut set.
func NewCounter(tbl *table.Table, acs []expr.AdvCut, cuts []Cut, rows []int) *Counter {
	if rows == nil {
		rows = make([]int, tbl.N)
		for i := range rows {
			rows[i] = i
		}
	}
	numeric, categorical := CounterColumns(tbl.Schema, cuts)
	c := &Counter{
		tbl:       tbl,
		acs:       acs,
		Rows:      rows,
		sortedIdx: make(map[int][]int32, len(numeric)),
		hist:      make(map[int][]int32, len(categorical)),
	}
	for _, col := range numeric {
		idx := make([]int32, len(rows))
		for i, r := range rows {
			idx[i] = int32(r)
		}
		vals := tbl.Cols[col]
		sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
		c.sortedIdx[col] = idx
	}
	for _, col := range categorical {
		c.hist[col] = histogram(tbl, col, rows)
	}
	c.countAdv()
	return c
}

func histogram(tbl *table.Table, col int, rows []int) []int32 {
	dom := tbl.Schema.Cols[col].Dom
	h := make([]int32, dom)
	src := tbl.Cols[col]
	for _, r := range rows {
		v := src[r]
		if v >= 0 && v < dom {
			h[v]++
		}
	}
	return h
}

func (c *Counter) countAdv() {
	c.advTrue = make([]int, len(c.acs))
	if len(c.acs) == 0 {
		return
	}
	for i, ac := range c.acs {
		lc, rc := c.tbl.Cols[ac.Left], c.tbl.Cols[ac.Right]
		n := 0
		switch ac.Op {
		case expr.Lt:
			for _, r := range c.Rows {
				if lc[r] < rc[r] {
					n++
				}
			}
		case expr.Le:
			for _, r := range c.Rows {
				if lc[r] <= rc[r] {
					n++
				}
			}
		case expr.Gt:
			for _, r := range c.Rows {
				if lc[r] > rc[r] {
					n++
				}
			}
		case expr.Ge:
			for _, r := range c.Rows {
				if lc[r] >= rc[r] {
					n++
				}
			}
		case expr.Eq:
			for _, r := range c.Rows {
				if lc[r] == rc[r] {
					n++
				}
			}
		}
		c.advTrue[i] = n
	}
}

// Size returns the node's row count.
func (c *Counter) Size() int { return len(c.Rows) }

// lowerBound returns the first position in sortedIdx[col] with value >= v.
func (c *Counter) lowerBound(col int, v int64) int {
	idx := c.sortedIdx[col]
	vals := c.tbl.Cols[col]
	return sort.Search(len(idx), func(i int) bool { return vals[idx[i]] >= v })
}

// upperBound returns the first position with value > v.
func (c *Counter) upperBound(col int, v int64) int {
	idx := c.sortedIdx[col]
	vals := c.tbl.Cols[col]
	return sort.Search(len(idx), func(i int) bool { return vals[idx[i]] > v })
}

// CountLeft returns how many of the node's rows satisfy the cut.
func (c *Counter) CountLeft(cut Cut) int {
	if cut.IsAdv {
		return c.advTrue[cut.Adv]
	}
	p := cut.Pred
	if h, ok := c.hist[p.Col]; ok {
		switch p.Op {
		case expr.Eq:
			if p.Literal >= 0 && p.Literal < int64(len(h)) {
				return int(h[p.Literal])
			}
			return 0
		case expr.In:
			n := 0
			for _, v := range p.Set {
				if v >= 0 && v < int64(len(h)) {
					n += int(h[v])
				}
			}
			return n
		case expr.Lt, expr.Le, expr.Gt, expr.Ge:
			// Range over ordered dictionary codes: prefix-sum the histogram.
			n := 0
			switch p.Op {
			case expr.Lt:
				for v := int64(0); v < p.Literal && v < int64(len(h)); v++ {
					n += int(h[v])
				}
			case expr.Le:
				for v := int64(0); v <= p.Literal && v < int64(len(h)); v++ {
					n += int(h[v])
				}
			case expr.Gt:
				for v := p.Literal + 1; v < int64(len(h)); v++ {
					if v >= 0 {
						n += int(h[v])
					}
				}
			case expr.Ge:
				for v := p.Literal; v < int64(len(h)); v++ {
					if v >= 0 {
						n += int(h[v])
					}
				}
			}
			return n
		}
	}
	if _, ok := c.sortedIdx[p.Col]; ok {
		switch p.Op {
		case expr.Lt:
			return c.lowerBound(p.Col, p.Literal)
		case expr.Le:
			return c.upperBound(p.Col, p.Literal)
		case expr.Gt:
			return len(c.Rows) - c.upperBound(p.Col, p.Literal)
		case expr.Ge:
			return len(c.Rows) - c.lowerBound(p.Col, p.Literal)
		case expr.Eq:
			return c.upperBound(p.Col, p.Literal) - c.lowerBound(p.Col, p.Literal)
		case expr.In:
			n := 0
			for _, v := range p.Set {
				n += c.upperBound(p.Col, v) - c.lowerBound(p.Col, v)
			}
			return n
		}
	}
	// Fallback: direct scan (column not indexed).
	n := 0
	col := c.tbl.Cols[p.Col]
	for _, r := range c.Rows {
		if p.EvalValue(col[r]) {
			n++
		}
	}
	return n
}

// Split partitions the counter by the cut, producing child counters that
// inherit sorted order (stable filter, O(rows) per indexed column) and
// rebuilt histograms.
func (c *Counter) Split(cut Cut, inLeft []bool) (left, right *Counter) {
	// inLeft is scratch space indexed by global row id; caller provides a
	// slice of len(tbl.N) to avoid re-allocating per split.
	lrows := make([]int, 0, len(c.Rows)/2+1)
	rrows := make([]int, 0, len(c.Rows)/2+1)
	if cut.IsAdv {
		ac := c.acs[cut.Adv]
		lc, rc := c.tbl.Cols[ac.Left], c.tbl.Cols[ac.Right]
		for _, r := range c.Rows {
			take := false
			switch ac.Op {
			case expr.Lt:
				take = lc[r] < rc[r]
			case expr.Le:
				take = lc[r] <= rc[r]
			case expr.Gt:
				take = lc[r] > rc[r]
			case expr.Ge:
				take = lc[r] >= rc[r]
			case expr.Eq:
				take = lc[r] == rc[r]
			}
			inLeft[r] = take
			if take {
				lrows = append(lrows, r)
			} else {
				rrows = append(rrows, r)
			}
		}
	} else {
		p := cut.Pred
		col := c.tbl.Cols[p.Col]
		for _, r := range c.Rows {
			take := p.EvalValue(col[r])
			inLeft[r] = take
			if take {
				lrows = append(lrows, r)
			} else {
				rrows = append(rrows, r)
			}
		}
	}
	left = &Counter{tbl: c.tbl, acs: c.acs, Rows: lrows,
		sortedIdx: make(map[int][]int32, len(c.sortedIdx)),
		hist:      make(map[int][]int32, len(c.hist))}
	right = &Counter{tbl: c.tbl, acs: c.acs, Rows: rrows,
		sortedIdx: make(map[int][]int32, len(c.sortedIdx)),
		hist:      make(map[int][]int32, len(c.hist))}
	for col, idx := range c.sortedIdx {
		li := make([]int32, 0, len(lrows))
		ri := make([]int32, 0, len(rrows))
		for _, r := range idx {
			if inLeft[r] {
				li = append(li, r)
			} else {
				ri = append(ri, r)
			}
		}
		left.sortedIdx[col] = li
		right.sortedIdx[col] = ri
	}
	for col := range c.hist {
		left.hist[col] = histogram(c.tbl, col, lrows)
		right.hist[col] = histogram(c.tbl, col, rrows)
	}
	left.countAdv()
	right.countAdv()
	return left, right
}
