// Package core implements the query-data routing tree (qd-tree) of
// Yang et al., SIGMOD 2020 — the paper's primary contribution.
//
// A qd-tree is a binary tree over the table's data space. Each internal
// node carries a cut p; its left child holds rows satisfying p and its
// right child rows satisfying ¬p (Sec. 3). Each node has a semantic
// description (paper Table 1): a hypercube range over numeric columns, a
// per-categorical-column bit mask, and — for the Sec. 6.1 extension — an
// advanced-cut bit vector. Leaves correspond to data blocks; descriptions
// are complete: every record matching a leaf's description is routed to
// that leaf.
package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/table"
)

// Cut is one edge predicate of the tree: either a unary predicate or a
// reference into the tree's advanced-cut table (Sec. 6.1).
type Cut struct {
	IsAdv bool
	Pred  expr.Pred // when !IsAdv
	Adv   int       // index into Tree.ACs when IsAdv
}

// UnaryCut wraps a unary predicate as a cut.
func UnaryCut(p expr.Pred) Cut { return Cut{Pred: p} }

// AdvancedCut wraps an advanced-cut index as a cut.
func AdvancedCut(i int) Cut { return Cut{IsAdv: true, Adv: i} }

// ExtractCuts derives the candidate cut set from a workload (Sec. 3.4):
// all pushed-down unary predicates, de-duplicated, plus one advanced cut
// per distinct reference. Shared by the qd facade and the serving
// subsystem's background replanner.
func ExtractCuts(queries []expr.Query) []Cut {
	seen := make(map[string]bool)
	var out []Cut
	for _, q := range queries {
		for _, p := range q.Preds() {
			c := UnaryCut(p)
			if !seen[c.Key()] {
				seen[c.Key()] = true
				out = append(out, c)
			}
		}
		for _, a := range q.AdvRefs() {
			c := AdvancedCut(a)
			if !seen[c.Key()] {
				seen[c.Key()] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// Eval evaluates the cut on a row given the tree's advanced-cut table.
func (c Cut) Eval(row []int64, acs []expr.AdvCut) bool {
	if c.IsAdv {
		return acs[c.Adv].Eval(row)
	}
	return c.Pred.Eval(row)
}

// String renders the cut with positional names; see StringWith.
func (c Cut) String() string { return c.StringWith(nil, nil) }

// StringWith renders the cut with column names and the advanced-cut table.
func (c Cut) StringWith(names []string, acs []expr.AdvCut) string {
	if c.IsAdv {
		if acs != nil && c.Adv < len(acs) {
			return acs[c.Adv].StringWith(names)
		}
		return fmt.Sprintf("AC%d", c.Adv)
	}
	return c.Pred.StringWith(names)
}

// Key returns a canonical identity string for de-duplication.
func (c Cut) Key() string {
	if c.IsAdv {
		return fmt.Sprintf("AC%d", c.Adv)
	}
	return c.Pred.Key()
}

// Desc is a node's semantic description (paper Table 1): the hypercube
// range, categorical masks, and advanced-cut bits. It is a conservative
// (complete) over-approximation of the node's contents used for skipping.
type Desc struct {
	// Lo and Hi give the half-open interval [Lo[c], Hi[c]) per column.
	// Categorical columns keep their full [0, Dom) interval; their masks
	// carry the precision.
	Lo, Hi []int64
	// Masks maps categorical column ordinal -> |Dom|-bit presence mask.
	Masks map[int]*expr.Bitset
	// AdvMay[i] is 1 when the node may contain rows satisfying advanced
	// cut i; AdvMayNot[i] is 1 when it may contain rows violating it.
	// Tracking both sides preserves completeness under ¬AC cuts.
	AdvMay, AdvMayNot *expr.Bitset
}

// NewRootDesc builds the whole-table description: full intervals, full
// masks, and both advanced-cut sides possible.
func NewRootDesc(s *table.Schema, numAC int) Desc {
	n := s.NumCols()
	d := Desc{
		Lo:        make([]int64, n),
		Hi:        make([]int64, n),
		Masks:     make(map[int]*expr.Bitset),
		AdvMay:    expr.NewFullBitset(numAC),
		AdvMayNot: expr.NewFullBitset(numAC),
	}
	for c, col := range s.Cols {
		if col.Kind == table.Categorical {
			d.Lo[c], d.Hi[c] = 0, col.Dom
			d.Masks[c] = expr.NewFullBitset(int(col.Dom))
		} else {
			d.Lo[c], d.Hi[c] = col.Min, col.Max+1
		}
	}
	return d
}

// Clone deep-copies the description.
func (d Desc) Clone() Desc {
	out := Desc{
		Lo:        append([]int64(nil), d.Lo...),
		Hi:        append([]int64(nil), d.Hi...),
		Masks:     make(map[int]*expr.Bitset, len(d.Masks)),
		AdvMay:    d.AdvMay.Clone(),
		AdvMayNot: d.AdvMayNot.Clone(),
	}
	for c, m := range d.Masks {
		out.Masks[c] = m.Clone()
	}
	return out
}

// Empty reports whether the description provably contains no rows.
func (d Desc) Empty() bool {
	for c := range d.Lo {
		if d.Lo[c] >= d.Hi[c] {
			return true
		}
	}
	for _, m := range d.Masks {
		if m.None() {
			return true
		}
	}
	return false
}

// restrict applies predicate p (when left) or ¬p (when !left) to the
// description in place. Equality on numeric columns tightens only the
// positive side; the negative side keeps the parent interval, which is a
// sound relaxation (the routing predicates stay exact).
func (d *Desc) restrict(p expr.Pred, left bool, s *table.Schema) {
	c := p.Col
	if m, isCat := d.Masks[c]; isCat && (p.Op == expr.Eq || p.Op == expr.In) {
		if p.Op == expr.Eq {
			if left {
				keep := expr.NewBitset(m.Len())
				if p.Literal >= 0 && p.Literal < int64(m.Len()) && m.Get(int(p.Literal)) {
					keep.Set(int(p.Literal))
				}
				d.Masks[c] = keep
			} else if p.Literal >= 0 && p.Literal < int64(m.Len()) {
				m.Clear(int(p.Literal))
			}
			return
		}
		set := expr.NewBitset(m.Len())
		for _, v := range p.Set {
			if v >= 0 && v < int64(m.Len()) {
				set.Set(int(v))
			}
		}
		if left {
			m.IntersectWith(set)
		} else {
			m.SubtractWith(set)
		}
		return
	}
	lit := p.Literal
	min64 := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	max64 := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	switch p.Op {
	case expr.Lt: // left: x < lit; right: x >= lit
		if left {
			d.Hi[c] = min64(d.Hi[c], lit)
		} else {
			d.Lo[c] = max64(d.Lo[c], lit)
		}
	case expr.Le: // left: x <= lit; right: x > lit
		if left {
			d.Hi[c] = min64(d.Hi[c], lit+1)
		} else {
			d.Lo[c] = max64(d.Lo[c], lit+1)
		}
	case expr.Gt: // left: x > lit; right: x <= lit
		if left {
			d.Lo[c] = max64(d.Lo[c], lit+1)
		} else {
			d.Hi[c] = min64(d.Hi[c], lit+1)
		}
	case expr.Ge: // left: x >= lit; right: x < lit
		if left {
			d.Lo[c] = max64(d.Lo[c], lit)
		} else {
			d.Hi[c] = min64(d.Hi[c], lit)
		}
	case expr.Eq: // numeric equality
		if left {
			d.Lo[c] = max64(d.Lo[c], lit)
			d.Hi[c] = min64(d.Hi[c], lit+1)
		}
		// right side: interval unchanged (hole not representable).
	case expr.In:
		// numeric IN: only the span [min(Set), max(Set)] is representable.
		if left && len(p.Set) > 0 {
			d.Lo[c] = max64(d.Lo[c], p.Set[0])
			d.Hi[c] = min64(d.Hi[c], p.Set[len(p.Set)-1]+1)
		}
	}
}

// PredMayMatch reports whether predicate p can be satisfied by some point
// of the description. This is the Sec. 3.3 leaf-intersection check for a
// single unary predicate.
func (d Desc) PredMayMatch(p expr.Pred) bool {
	c := p.Col
	if m, isCat := d.Masks[c]; isCat {
		switch p.Op {
		case expr.Eq:
			return p.Literal >= 0 && p.Literal < int64(m.Len()) && m.Get(int(p.Literal))
		case expr.In:
			for _, v := range p.Set {
				if v >= 0 && v < int64(m.Len()) && m.Get(int(v)) {
					return true
				}
			}
			return false
		}
		// Range comparisons on a categorical column fall through to the
		// interval check below (ordered dictionary codes).
	}
	lo, hi := d.Lo[c], d.Hi[c] // [lo, hi)
	if lo >= hi {
		return false
	}
	switch p.Op {
	case expr.Lt:
		return lo < p.Literal
	case expr.Le:
		return lo <= p.Literal
	case expr.Gt:
		return hi-1 > p.Literal
	case expr.Ge:
		return hi-1 >= p.Literal
	case expr.Eq:
		return p.Literal >= lo && p.Literal < hi
	case expr.In:
		for _, v := range p.Set {
			if v >= lo && v < hi {
				return true
			}
		}
		return false
	}
	return true
}

// QueryMayMatch reports whether query q can select any point of the
// description: an AND intersects iff all conjuncts do, an OR iff any
// disjunct does (Sec. 3.3).
func (d Desc) QueryMayMatch(q expr.Query) bool {
	if q.Root == nil {
		return true
	}
	return d.nodeMayMatch(q.Root)
}

func (d Desc) nodeMayMatch(n *expr.Node) bool {
	switch n.Kind {
	case expr.KindPred:
		return d.PredMayMatch(n.Pred)
	case expr.KindAdv:
		return n.Adv >= d.AdvMay.Len() || d.AdvMay.Get(n.Adv)
	case expr.KindAnd:
		for _, c := range n.Children {
			if !d.nodeMayMatch(c) {
				return false
			}
		}
		return true
	case expr.KindOr:
		for _, c := range n.Children {
			if d.nodeMayMatch(c) {
				return true
			}
		}
		return false
	}
	return true
}

// Node is one qd-tree node. Internal nodes carry a Cut and two children;
// leaves carry a block ID. Count is the number of full-dataset rows routed
// to the subtree (set by RouteTable / Freeze).
type Node struct {
	ID          int
	Cut         *Cut
	Left, Right *Node
	Desc        Desc
	BlockID     int // leaf block ordinal; -1 for internal nodes
	Count       int
	Depth       int
}

// IsLeaf reports whether the node has no cut.
func (n *Node) IsLeaf() bool { return n.Cut == nil }

// Tree is a complete qd-tree: schema, advanced-cut table, and node graph.
type Tree struct {
	Schema *table.Schema
	ACs    []expr.AdvCut
	Root   *Node
	leaves []*Node
	nextID int
}

// NewTree returns a single-node tree (the root spans the whole table).
func NewTree(s *table.Schema, acs []expr.AdvCut) *Tree {
	t := &Tree{Schema: s, ACs: acs}
	t.Root = &Node{ID: 0, BlockID: -1, Desc: NewRootDesc(s, len(acs))}
	t.nextID = 1
	t.leaves = nil // computed lazily
	return t
}

// Split applies cut c to leaf n, producing two children with restricted
// descriptions (the T ⊕ (p, n) operation of Sec. 4). It panics if n already
// has children.
func (t *Tree) Split(n *Node, c Cut) (left, right *Node) {
	if !n.IsLeaf() {
		panic("core: split of non-leaf node")
	}
	cc := c
	n.Cut = &cc
	ld, rd := n.Desc.Clone(), n.Desc.Clone()
	if c.IsAdv {
		ld.AdvMayNot.Clear(c.Adv) // left satisfies AC: no violating rows
		rd.AdvMay.Clear(c.Adv)    // right violates AC: no satisfying rows
	} else {
		ld.restrict(c.Pred, true, t.Schema)
		rd.restrict(c.Pred, false, t.Schema)
	}
	left = &Node{ID: t.nextID, BlockID: -1, Desc: ld, Depth: n.Depth + 1}
	right = &Node{ID: t.nextID + 1, BlockID: -1, Desc: rd, Depth: n.Depth + 1}
	t.nextID += 2
	n.Left, n.Right = left, right
	t.leaves = nil
	return left, right
}

// Leaves returns the leaf nodes in stable left-to-right order and assigns
// block IDs 0..k-1 in that order.
func (t *Tree) Leaves() []*Node {
	if t.leaves != nil {
		return t.leaves
	}
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			n.BlockID = len(out)
			out = append(out, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	t.leaves = out
	return out
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int {
	n := 0
	t.Walk(func(*Node) { n++ })
	return n
}

// Depth returns the maximum leaf depth.
func (t *Tree) Depth() int {
	d := 0
	t.Walk(func(n *Node) {
		if n.IsLeaf() && n.Depth > d {
			d = n.Depth
		}
	})
	return d
}

// Walk visits every node pre-order.
func (t *Tree) Walk(fn func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		fn(n)
		rec(n.Left)
		rec(n.Right)
	}
	rec(t.Root)
}

// RouteRow routes one row to its leaf and returns the leaf node. Each row
// lands in exactly one leaf because every split is binary (p / ¬p).
func (t *Tree) RouteRow(row []int64) *Node {
	n := t.Root
	for !n.IsLeaf() {
		if n.Cut.Eval(row, t.ACs) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// RouteTable routes every row of tbl and returns the per-row block ID. It
// partitions row-index slices down the tree so each cut is evaluated
// column-at-a-time (the vectorized strategy of Sec. 3.1), and it updates
// each node's Count.
func (t *Tree) RouteTable(tbl *table.Table) []int {
	t.Leaves() // assign block IDs
	bids := make([]int, tbl.N)
	rows := make([]int, tbl.N)
	for i := range rows {
		rows[i] = i
	}
	t.routeRows(t.Root, tbl, rows, bids)
	return bids
}

func (t *Tree) routeRows(n *Node, tbl *table.Table, rows []int, bids []int) {
	n.Count = len(rows)
	if n.IsLeaf() {
		for _, r := range rows {
			bids[r] = n.BlockID
		}
		return
	}
	left, right := t.PartitionRows(tbl, rows, *n.Cut)
	t.routeRows(n.Left, tbl, left, bids)
	t.routeRows(n.Right, tbl, right, bids)
}

// PartitionRows splits the row-index set by the cut: rows satisfying the
// cut go left, the rest right. The unary path reads a single column.
func (t *Tree) PartitionRows(tbl *table.Table, rows []int, c Cut) (left, right []int) {
	left = make([]int, 0, len(rows)/2+1)
	right = make([]int, 0, len(rows)/2+1)
	if c.IsAdv {
		ac := t.ACs[c.Adv]
		lc, rc := tbl.Cols[ac.Left], tbl.Cols[ac.Right]
		for _, r := range rows {
			take := false
			switch ac.Op {
			case expr.Lt:
				take = lc[r] < rc[r]
			case expr.Le:
				take = lc[r] <= rc[r]
			case expr.Gt:
				take = lc[r] > rc[r]
			case expr.Ge:
				take = lc[r] >= rc[r]
			case expr.Eq:
				take = lc[r] == rc[r]
			}
			if take {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		return left, right
	}
	col := tbl.Cols[c.Pred.Col]
	p := c.Pred
	switch p.Op {
	case expr.Lt:
		for _, r := range rows {
			if col[r] < p.Literal {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
	case expr.Le:
		for _, r := range rows {
			if col[r] <= p.Literal {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
	case expr.Gt:
		for _, r := range rows {
			if col[r] > p.Literal {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
	case expr.Ge:
		for _, r := range rows {
			if col[r] >= p.Literal {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
	case expr.Eq:
		for _, r := range rows {
			if col[r] == p.Literal {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
	case expr.In:
		for _, r := range rows {
			if p.InSet(col[r]) {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
	}
	return left, right
}

// QueryBlocks returns the sorted block IDs of all leaves whose semantic
// description intersects the query — the BID IN (...) list of Sec. 3.3.
func (t *Tree) QueryBlocks(q expr.Query) []int {
	var out []int
	for _, leaf := range t.Leaves() {
		if leaf.Desc.QueryMayMatch(q) {
			out = append(out, leaf.BlockID)
		}
	}
	return out
}

// Freeze tightens every leaf description to the min-max hull (and observed
// categorical values / advanced-cut outcomes) of the rows actually routed
// there, per the optimization in Sec. 3.2: "replace each leaf's range with
// a min-max index over the leaf's records". bids must come from RouteTable
// on the same table.
func (t *Tree) Freeze(tbl *table.Table, bids []int) {
	leaves := t.Leaves()
	perLeaf := make([][]int, len(leaves))
	for r, b := range bids {
		perLeaf[b] = append(perLeaf[b], r)
	}
	for li, leaf := range leaves {
		rows := perLeaf[li]
		leaf.Count = len(rows)
		if len(rows) == 0 {
			// Mark provably empty.
			for c := range leaf.Desc.Lo {
				leaf.Desc.Hi[c] = leaf.Desc.Lo[c]
			}
			continue
		}
		for c, col := range t.Schema.Cols {
			lo, hi, _ := tbl.MinMax(c, rows)
			leaf.Desc.Lo[c], leaf.Desc.Hi[c] = lo, hi+1
			if col.Kind == table.Categorical {
				m := expr.NewBitset(int(col.Dom))
				src := tbl.Cols[c]
				for _, r := range rows {
					v := src[r]
					if v >= 0 && v < col.Dom {
						m.Set(int(v))
					}
				}
				leaf.Desc.Masks[c] = m
			}
		}
		if len(t.ACs) > 0 {
			may, mayNot := expr.NewBitset(len(t.ACs)), expr.NewBitset(len(t.ACs))
			rowBuf := make([]int64, t.Schema.NumCols())
			for _, r := range rows {
				rowBuf = tbl.Row(r, rowBuf)
				for i, ac := range t.ACs {
					if ac.Eval(rowBuf) {
						may.Set(i)
					} else {
						mayNot.Set(i)
					}
				}
			}
			leaf.Desc.AdvMay, leaf.Desc.AdvMayNot = may, mayNot
		}
	}
}

// CutCounts returns, per column name (or "AC<i>" for advanced cuts), the
// number of cuts on that column at each depth — the data behind Figure 9.
func (t *Tree) CutCounts() map[string][]int {
	depth := t.Depth()
	out := make(map[string][]int)
	t.Walk(func(n *Node) {
		if n.IsLeaf() {
			return
		}
		key := ""
		if n.Cut.IsAdv {
			key = fmt.Sprintf("AC%d", n.Cut.Adv)
		} else {
			key = t.Schema.Cols[n.Cut.Pred.Col].Name
		}
		row := out[key]
		if row == nil {
			row = make([]int, depth+1)
			out[key] = row
		}
		row[n.Depth]++
	})
	return out
}

// LeafPredicate returns the exact semantic predicate of a leaf: the
// conjunction of cut literals along the root-to-leaf path.
func (t *Tree) LeafPredicate(leaf *Node) string {
	var path []string
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n == leaf {
			return true
		}
		if n.IsLeaf() {
			return false
		}
		cs := n.Cut.StringWith(t.Schema.Names(), t.ACs)
		if walk(n.Left) {
			path = append(path, cs)
			return true
		}
		if walk(n.Right) {
			path = append(path, "NOT("+cs+")")
			return true
		}
		return false
	}
	if !walk(t.Root) {
		return ""
	}
	// path was appended leaf-to-root; reverse for readability.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if len(path) == 0 {
		return "TRUE"
	}
	return strings.Join(path, " AND ")
}

// String renders the tree structure for debugging and the qdtool CLI.
func (t *Tree) String() string {
	var b strings.Builder
	names := t.Schema.Names()
	var rec func(n *Node, indent string)
	rec = func(n *Node, indent string) {
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%sleaf B%d (count=%d)\n", indent, n.BlockID, n.Count)
			return
		}
		fmt.Fprintf(&b, "%s[%s] (count=%d)\n", indent, n.Cut.StringWith(names, t.ACs), n.Count)
		rec(n.Left, indent+"  ")
		rec(n.Right, indent+"  ")
	}
	t.Leaves()
	rec(t.Root, "")
	return b.String()
}
