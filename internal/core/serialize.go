package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/expr"
	"repro/internal/table"
)

// The on-disk format is JSON: self-describing, diff-able, and sufficient
// for trees of a few thousand nodes (Sec. 7 trees have O(100)–O(1000)
// leaves). The schema travels with the tree so a deployed router needs no
// side channel.

type colJSON struct {
	Name string   `json:"name"`
	Kind int      `json:"kind"`
	Dom  int64    `json:"dom,omitempty"`
	Min  int64    `json:"min,omitempty"`
	Max  int64    `json:"max,omitempty"`
	Dict []string `json:"dict,omitempty"`
}

type acJSON struct {
	Left  int `json:"left"`
	Op    int `json:"op"`
	Right int `json:"right"`
}

type predJSON struct {
	Col     int     `json:"col"`
	Op      int     `json:"op"`
	Literal int64   `json:"lit,omitempty"`
	Set     []int64 `json:"set,omitempty"`
}

type maskJSON struct {
	Col   int      `json:"col"`
	Bits  int      `json:"bits"`
	Words []uint64 `json:"words"`
}

type nodeJSON struct {
	ID      int        `json:"id"`
	Left    int        `json:"left"`  // node index or -1
	Right   int        `json:"right"` // node index or -1
	IsAdv   bool       `json:"isAdv,omitempty"`
	Adv     int        `json:"adv,omitempty"`
	Pred    *predJSON  `json:"pred,omitempty"`
	BlockID int        `json:"blockId"`
	Count   int        `json:"count"`
	Depth   int        `json:"depth"`
	Lo      []int64    `json:"lo"`
	Hi      []int64    `json:"hi"`
	Masks   []maskJSON `json:"masks,omitempty"`
	AdvMay  []uint64   `json:"advMay,omitempty"`
	AdvNot  []uint64   `json:"advNot,omitempty"`
}

type treeJSON struct {
	Version int        `json:"version"`
	Columns []colJSON  `json:"columns"`
	ACs     []acJSON   `json:"acs,omitempty"`
	Nodes   []nodeJSON `json:"nodes"`
}

// Marshal serializes the tree (including its schema) to JSON.
func (t *Tree) Marshal() ([]byte, error) {
	tj := treeJSON{Version: 1}
	for _, c := range t.Schema.Cols {
		tj.Columns = append(tj.Columns, colJSON{
			Name: c.Name, Kind: int(c.Kind), Dom: c.Dom, Min: c.Min, Max: c.Max, Dict: c.Dict,
		})
	}
	for _, ac := range t.ACs {
		tj.ACs = append(tj.ACs, acJSON{Left: ac.Left, Op: int(ac.Op), Right: ac.Right})
	}
	t.Leaves()
	index := make(map[*Node]int)
	t.Walk(func(n *Node) {
		index[n] = len(index)
		tj.Nodes = append(tj.Nodes, nodeJSON{})
	})
	i := 0
	t.Walk(func(n *Node) {
		nj := nodeJSON{
			ID: n.ID, Left: -1, Right: -1,
			BlockID: n.BlockID, Count: n.Count, Depth: n.Depth,
			Lo: n.Desc.Lo, Hi: n.Desc.Hi,
		}
		if n.Left != nil {
			nj.Left = index[n.Left]
			nj.Right = index[n.Right]
			if n.Cut.IsAdv {
				nj.IsAdv, nj.Adv = true, n.Cut.Adv
			} else {
				p := n.Cut.Pred
				nj.Pred = &predJSON{Col: p.Col, Op: int(p.Op), Literal: p.Literal, Set: p.Set}
			}
		}
		for c, m := range n.Desc.Masks {
			nj.Masks = append(nj.Masks, maskJSON{Col: c, Bits: m.Len(), Words: m.Words()})
		}
		if n.Desc.AdvMay != nil && n.Desc.AdvMay.Len() > 0 {
			nj.AdvMay = n.Desc.AdvMay.Words()
			nj.AdvNot = n.Desc.AdvMayNot.Words()
		}
		tj.Nodes[i] = nj
		i++
	})
	return json.Marshal(tj)
}

// Unmarshal reconstructs a tree from Marshal output.
func Unmarshal(data []byte) (*Tree, error) {
	var tj treeJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return nil, fmt.Errorf("core: decode tree: %w", err)
	}
	if tj.Version != 1 {
		return nil, fmt.Errorf("core: unsupported tree version %d", tj.Version)
	}
	cols := make([]table.Column, len(tj.Columns))
	for i, c := range tj.Columns {
		cols[i] = table.Column{Name: c.Name, Kind: table.Kind(c.Kind), Dom: c.Dom, Min: c.Min, Max: c.Max, Dict: c.Dict}
	}
	schema, err := table.NewSchema(cols)
	if err != nil {
		return nil, err
	}
	acs := make([]expr.AdvCut, len(tj.ACs))
	for i, a := range tj.ACs {
		acs[i] = expr.AdvCut{Left: a.Left, Op: expr.Op(a.Op), Right: a.Right}
	}
	if len(tj.Nodes) == 0 {
		return nil, fmt.Errorf("core: tree has no nodes")
	}
	nodes := make([]*Node, len(tj.Nodes))
	maxID := 0
	for i, nj := range tj.Nodes {
		d := Desc{
			Lo:        append([]int64(nil), nj.Lo...),
			Hi:        append([]int64(nil), nj.Hi...),
			Masks:     make(map[int]*expr.Bitset),
			AdvMay:    expr.NewFullBitset(len(acs)),
			AdvMayNot: expr.NewFullBitset(len(acs)),
		}
		for _, m := range nj.Masks {
			d.Masks[m.Col] = expr.FromWords(m.Bits, m.Words)
		}
		if nj.AdvMay != nil {
			d.AdvMay = expr.FromWords(len(acs), nj.AdvMay)
			d.AdvMayNot = expr.FromWords(len(acs), nj.AdvNot)
		}
		nodes[i] = &Node{ID: nj.ID, BlockID: nj.BlockID, Count: nj.Count, Depth: nj.Depth, Desc: d}
		if nj.ID >= maxID {
			maxID = nj.ID + 1
		}
	}
	for i, nj := range tj.Nodes {
		if nj.Left < 0 {
			continue
		}
		if nj.Left >= len(nodes) || nj.Right >= len(nodes) {
			return nil, fmt.Errorf("core: node %d has out-of-range child", i)
		}
		nodes[i].Left, nodes[i].Right = nodes[nj.Left], nodes[nj.Right]
		var cut Cut
		if nj.IsAdv {
			cut = AdvancedCut(nj.Adv)
		} else if nj.Pred != nil {
			cut = UnaryCut(expr.Pred{Col: nj.Pred.Col, Op: expr.Op(nj.Pred.Op), Literal: nj.Pred.Literal, Set: nj.Pred.Set})
		} else {
			return nil, fmt.Errorf("core: internal node %d missing cut", i)
		}
		nodes[i].Cut = &cut
	}
	return &Tree{Schema: schema, ACs: acs, Root: nodes[0], nextID: maxID}, nil
}

// Save writes the tree to w as JSON.
func (t *Tree) Save(w io.Writer) error {
	data, err := t.Marshal()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Load reads a tree previously written by Save.
func Load(r io.Reader) (*Tree, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}
