package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/table"
)

// bruteCount is the reference implementation of Counter.CountLeft.
func bruteCount(tbl *table.Table, acs []expr.AdvCut, rows []int, c Cut) int {
	n := 0
	row := make([]int64, tbl.Schema.NumCols())
	for _, r := range rows {
		row = tbl.Row(r, row)
		if c.Eval(row, acs) {
			n++
		}
	}
	return n
}

func counterFixture(seed int64) (*table.Table, []expr.AdvCut, []Cut) {
	schema := table.MustSchema([]table.Column{
		{Name: "n1", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "n2", Kind: table.Numeric, Min: 0, Max: 999},
		{Name: "c1", Kind: table.Categorical, Dom: 6},
	})
	rng := rand.New(rand.NewSource(seed))
	tbl := table.New(schema, 1500)
	for i := 0; i < 1500; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(100)), int64(rng.Intn(1000)), int64(rng.Intn(6))})
	}
	acs := []expr.AdvCut{{Left: 0, Op: expr.Lt, Right: 1}, {Left: 0, Op: expr.Eq, Right: 2}}
	cuts := []Cut{
		UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 30}),
		UnaryCut(expr.Pred{Col: 0, Op: expr.Le, Literal: 30}),
		UnaryCut(expr.Pred{Col: 0, Op: expr.Gt, Literal: 70}),
		UnaryCut(expr.Pred{Col: 0, Op: expr.Ge, Literal: 70}),
		UnaryCut(expr.Pred{Col: 0, Op: expr.Eq, Literal: 50}),
		UnaryCut(expr.Pred{Col: 1, Op: expr.Lt, Literal: 500}),
		UnaryCut(expr.NewIn(0, []int64{5, 10, 15})),
		UnaryCut(expr.Pred{Col: 2, Op: expr.Eq, Literal: 3}),
		UnaryCut(expr.NewIn(2, []int64{0, 5})),
		UnaryCut(expr.Pred{Col: 2, Op: expr.Lt, Literal: 3}),
		UnaryCut(expr.Pred{Col: 2, Op: expr.Ge, Literal: 4}),
		UnaryCut(expr.Pred{Col: 2, Op: expr.Le, Literal: 2}),
		UnaryCut(expr.Pred{Col: 2, Op: expr.Gt, Literal: 1}),
		AdvancedCut(0),
		AdvancedCut(1),
	}
	return tbl, acs, cuts
}

func TestCounterMatchesBruteForce(t *testing.T) {
	tbl, acs, cuts := counterFixture(1)
	cnt := NewCounter(tbl, acs, cuts, nil)
	all := make([]int, tbl.N)
	for i := range all {
		all[i] = i
	}
	for _, c := range cuts {
		want := bruteCount(tbl, acs, all, c)
		if got := cnt.CountLeft(c); got != want {
			t.Errorf("cut %s: CountLeft=%d brute=%d", c.Key(), got, want)
		}
	}
}

func TestCounterSplitPreservesCounts(t *testing.T) {
	tbl, acs, cuts := counterFixture(2)
	cnt := NewCounter(tbl, acs, cuts, nil)
	inLeft := make([]bool, tbl.N)
	l, r := cnt.Split(cuts[0], inLeft)
	if l.Size()+r.Size() != tbl.N {
		t.Fatalf("sizes %d+%d != %d", l.Size(), r.Size(), tbl.N)
	}
	// Counts on children must still match brute force for every cut.
	for _, c := range cuts {
		if got, want := l.CountLeft(c), bruteCount(tbl, acs, l.Rows, c); got != want {
			t.Errorf("left, cut %s: got %d want %d", c.Key(), got, want)
		}
		if got, want := r.CountLeft(c), bruteCount(tbl, acs, r.Rows, c); got != want {
			t.Errorf("right, cut %s: got %d want %d", c.Key(), got, want)
		}
	}
	// Deeper split: sorted order must survive two generations.
	ll, lr := l.Split(cuts[5], inLeft)
	for _, c := range cuts {
		if got, want := ll.CountLeft(c), bruteCount(tbl, acs, ll.Rows, c); got != want {
			t.Errorf("left-left, cut %s: got %d want %d", c.Key(), got, want)
		}
		if got, want := lr.CountLeft(c), bruteCount(tbl, acs, lr.Rows, c); got != want {
			t.Errorf("left-right, cut %s: got %d want %d", c.Key(), got, want)
		}
	}
}

func TestCounterFallbackScan(t *testing.T) {
	// A cut on a column absent from the indexed cut set must still count
	// correctly via the fallback scan.
	tbl, acs, cuts := counterFixture(3)
	cnt := NewCounter(tbl, acs, cuts[:1], nil) // index only column 0
	probe := UnaryCut(expr.Pred{Col: 1, Op: expr.Ge, Literal: 250})
	all := make([]int, tbl.N)
	for i := range all {
		all[i] = i
	}
	if got, want := cnt.CountLeft(probe), bruteCount(tbl, acs, all, probe); got != want {
		t.Errorf("fallback: got %d want %d", got, want)
	}
}

// Property: CountLeft(cut) + CountLeft(complement) == Size for range cuts.
func TestCounterComplementProperty(t *testing.T) {
	tbl, acs, cuts := counterFixture(4)
	cnt := NewCounter(tbl, acs, cuts, nil)
	f := func(lit int64) bool {
		lit = lit % 100
		lt := cnt.CountLeft(UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: lit}))
		ge := cnt.CountLeft(UnaryCut(expr.Pred{Col: 0, Op: expr.Ge, Literal: lit}))
		return lt+ge == cnt.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCowChildrenMatchSplitDescs(t *testing.T) {
	// CowChildren must produce descriptions equivalent to Tree.Split's.
	tbl, acs, cuts := counterFixture(5)
	for _, c := range cuts {
		t1 := NewTree(tbl.Schema, acs)
		l, r := t1.Split(t1.Root, c)
		cl, cr := NewRootDesc(tbl.Schema, len(acs)).CowChildren(c)
		if !descEqual(l.Desc, cl) || !descEqual(r.Desc, cr) {
			t.Errorf("cut %s: COW children differ from Split children", c.Key())
		}
	}
}

func descEqual(a, b Desc) bool {
	for i := range a.Lo {
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			return false
		}
	}
	if len(a.Masks) != len(b.Masks) {
		return false
	}
	for c, m := range a.Masks {
		if !m.Equal(b.Masks[c]) {
			return false
		}
	}
	return a.AdvMay.Equal(b.AdvMay) && a.AdvMayNot.Equal(b.AdvMayNot)
}
