package core

import "repro/internal/expr"

// CowChildren returns the left and right child descriptions produced by
// applying cut c to d, sharing all unmodified bitset storage with the
// parent (copy-on-write). Constructors evaluate hundreds of candidate cuts
// per node (Sec. 4); this avoids deep-cloning every categorical mask per
// candidate. The returned descriptions must be treated as immutable.
func (d Desc) CowChildren(c Cut) (left, right Desc) {
	left = Desc{
		Lo:        append([]int64(nil), d.Lo...),
		Hi:        append([]int64(nil), d.Hi...),
		Masks:     d.Masks,
		AdvMay:    d.AdvMay,
		AdvMayNot: d.AdvMayNot,
	}
	right = Desc{
		Lo:        append([]int64(nil), d.Lo...),
		Hi:        append([]int64(nil), d.Hi...),
		Masks:     d.Masks,
		AdvMay:    d.AdvMay,
		AdvMayNot: d.AdvMayNot,
	}
	if c.IsAdv {
		ln := d.AdvMayNot.Clone()
		ln.Clear(c.Adv)
		left.AdvMayNot = ln
		rm := d.AdvMay.Clone()
		rm.Clear(c.Adv)
		right.AdvMay = rm
		return left, right
	}
	p := c.Pred
	if m, isCat := d.Masks[p.Col]; isCat && (p.Op == expr.Eq || p.Op == expr.In) {
		lm, rm := m.Clone(), m.Clone()
		switch p.Op {
		case expr.Eq:
			keep := expr.NewBitset(m.Len())
			if p.Literal >= 0 && p.Literal < int64(m.Len()) && m.Get(int(p.Literal)) {
				keep.Set(int(p.Literal))
			}
			lm = keep
			if p.Literal >= 0 && p.Literal < int64(m.Len()) {
				rm.Clear(int(p.Literal))
			}
		case expr.In:
			set := expr.NewBitset(m.Len())
			for _, v := range p.Set {
				if v >= 0 && v < int64(m.Len()) {
					set.Set(int(v))
				}
			}
			lm.IntersectWith(set)
			rm.SubtractWith(set)
		}
		left.Masks = cowMaskMap(d.Masks, p.Col, lm)
		right.Masks = cowMaskMap(d.Masks, p.Col, rm)
		return left, right
	}
	left.restrict(p, true, nil)
	right.restrict(p, false, nil)
	return left, right
}

func cowMaskMap(masks map[int]*expr.Bitset, col int, replacement *expr.Bitset) map[int]*expr.Bitset {
	out := make(map[int]*expr.Bitset, len(masks))
	for c, m := range masks {
		out[c] = m
	}
	out[col] = replacement
	return out
}
