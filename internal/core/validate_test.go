package core

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/table"
)

func TestValidateAcceptsConstructedTrees(t *testing.T) {
	tbl := randomTable(1000, 21)
	tree := NewTree(tbl.Schema, nil)
	l, r := tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 40}))
	tree.Split(l, UnaryCut(expr.Pred{Col: 1, Op: expr.Eq, Literal: 1}))
	tree.Split(r, UnaryCut(expr.Pred{Col: 0, Op: expr.Ge, Literal: 80}))
	tree.Leaves()
	bids := tree.RouteTable(tbl)
	tree.Freeze(tbl, bids)
	if err := tree.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
}

func TestValidateAfterSerializationRoundTrip(t *testing.T) {
	tbl := randomTable(500, 22)
	tree := NewTree(tbl.Schema, nil)
	tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 50}))
	tree.RouteTable(tbl)
	data, err := tree.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	back.Leaves()
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped tree invalid: %v", err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	mk := func() *Tree {
		tree := NewTree(twoColSchema(), nil)
		tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 40}))
		tree.Leaves()
		return tree
	}
	// Duplicate IDs.
	tr := mk()
	tr.Left().ID = tr.Root.ID
	if err := tr.Validate(); err == nil {
		t.Error("duplicate IDs must be rejected")
	}
	// Child interval escaping parent.
	tr = mk()
	tr.Left().Desc.Hi[0] = 1000
	if err := tr.Validate(); err == nil {
		t.Error("escaping child interval must be rejected")
	}
	// Bad cut column.
	tr = mk()
	tr.Root.Cut.Pred.Col = 99
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range cut column must be rejected")
	}
	// Bad advanced-cut index.
	tr = mk()
	tr.Root.Cut = &Cut{IsAdv: true, Adv: 5}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range AC must be rejected")
	}
	// Inconsistent counts.
	tr = mk()
	tr.Root.Count = 100
	tr.Left().Count = 10
	tr.Root.Right.Count = 10
	if err := tr.Validate(); err == nil {
		t.Error("count mismatch must be rejected")
	}
	// Wrong depth.
	tr = mk()
	tr.Left().Depth = 7
	if err := tr.Validate(); err == nil {
		t.Error("wrong child depth must be rejected")
	}
	// Non-dense block IDs.
	tr = mk()
	tr.Left().BlockID = 5
	if err := tr.Validate(); err == nil {
		t.Error("non-dense block IDs must be rejected")
	}
	// Empty tree.
	if err := (&Tree{Schema: twoColSchema()}).Validate(); err == nil {
		t.Error("nil root must be rejected")
	}
}

// Left is a test helper exposing the root's left child.
func (t *Tree) Left() *Node { return t.Root.Left }

func TestCheckSchema(t *testing.T) {
	tree := NewTree(twoColSchema(), nil)
	good := table.New(twoColSchema(), 0)
	if err := tree.CheckSchema(good); err != nil {
		t.Fatalf("matching schema rejected: %v", err)
	}
	short := table.New(table.MustSchema([]table.Column{
		{Name: "cpu", Kind: table.Numeric, Min: 0, Max: 99}}), 0)
	if err := tree.CheckSchema(short); err == nil {
		t.Error("column count mismatch must be rejected")
	}
	wrongKind := table.New(table.MustSchema([]table.Column{
		{Name: "cpu", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "mode", Kind: table.Numeric, Min: 0, Max: 2}}), 0)
	if err := tree.CheckSchema(wrongKind); err == nil {
		t.Error("kind mismatch must be rejected")
	}
	wrongDom := table.New(table.MustSchema([]table.Column{
		{Name: "cpu", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "mode", Kind: table.Categorical, Dom: 7}}), 0)
	if err := tree.CheckSchema(wrongDom); err == nil {
		t.Error("domain mismatch must be rejected")
	}
}

// Property: every tree built by random legal splits validates.
func TestValidatePropertyRandomTrees(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		tree := NewTree(twoColSchema(), nil)
		leaves := []*Node{tree.Root}
		for k := 0; k < 1+rng.Intn(6); k++ {
			n := leaves[rng.Intn(len(leaves))]
			if !n.IsLeaf() {
				continue
			}
			var cut Cut
			if rng.Intn(2) == 0 {
				cut = UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: int64(rng.Intn(100))})
			} else {
				cut = UnaryCut(expr.Pred{Col: 1, Op: expr.Eq, Literal: int64(rng.Intn(3))})
			}
			l, r := tree.Split(n, cut)
			leaves = append(leaves, l, r)
		}
		tree.Leaves()
		if err := tree.Validate(); err != nil {
			t.Fatalf("trial %d: constructed tree invalid: %v", trial, err)
		}
	}
}
