package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/table"
)

// twoColSchema: cpu numeric [0,100), mode categorical of 3 values — enough
// to exercise ranges and masks.
func twoColSchema() *table.Schema {
	return table.MustSchema([]table.Column{
		{Name: "cpu", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "mode", Kind: table.Categorical, Dom: 3, Dict: []string{"LOW", "MED", "HIGH"}},
	})
}

func randomTable(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	tbl := table.New(twoColSchema(), n)
	for i := 0; i < n; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(100)), int64(rng.Intn(3))})
	}
	return tbl
}

func TestRootDesc(t *testing.T) {
	d := NewRootDesc(twoColSchema(), 2)
	if d.Lo[0] != 0 || d.Hi[0] != 100 {
		t.Errorf("numeric interval = [%d,%d)", d.Lo[0], d.Hi[0])
	}
	if d.Masks[1].Count() != 3 {
		t.Error("categorical mask must start full")
	}
	if !d.AdvMay.Get(0) || !d.AdvMayNot.Get(1) {
		t.Error("advanced-cut bits must start full on both sides")
	}
	if d.Empty() {
		t.Error("root desc must not be empty")
	}
}

func TestSplitRangeRestriction(t *testing.T) {
	// Mirrors the paper's Sec. 3.2 example: cut cpu < 10 on the root.
	tree := NewTree(twoColSchema(), nil)
	l, r := tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}))
	if l.Desc.Lo[0] != 0 || l.Desc.Hi[0] != 10 {
		t.Errorf("left = [%d,%d), want [0,10)", l.Desc.Lo[0], l.Desc.Hi[0])
	}
	if r.Desc.Lo[0] != 10 || r.Desc.Hi[0] != 100 {
		t.Errorf("right = [%d,%d), want [10,100)", r.Desc.Lo[0], r.Desc.Hi[0])
	}
}

func TestSplitCategoricalMask(t *testing.T) {
	// Paper Sec. 3.2: cutting on priority = MED keeps the left mask full
	// at MED only... left keeps [1,1,1]? No: the paper keeps the full
	// parent mask on the left ([1,1,1]) because "may appear" is sound,
	// but our implementation tightens the left to exactly {MED}, which is
	// strictly more precise and still complete.
	tree := NewTree(twoColSchema(), nil)
	l, r := tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 1, Op: expr.Eq, Literal: 1}))
	lm, rm := l.Desc.Masks[1], r.Desc.Masks[1]
	if !lm.Get(1) || lm.Count() != 1 {
		t.Errorf("left mask = %v bits", lm.Count())
	}
	if rm.Get(1) || !rm.Get(0) || !rm.Get(2) {
		t.Error("right mask must be [1,0,1]")
	}
}

func TestSplitInMask(t *testing.T) {
	tree := NewTree(twoColSchema(), nil)
	l, r := tree.Split(tree.Root, UnaryCut(expr.NewIn(1, []int64{0, 2})))
	if !l.Desc.Masks[1].Get(0) || l.Desc.Masks[1].Get(1) || !l.Desc.Masks[1].Get(2) {
		t.Error("left IN mask wrong")
	}
	if r.Desc.Masks[1].Get(0) || !r.Desc.Masks[1].Get(1) || r.Desc.Masks[1].Get(2) {
		t.Error("right IN mask wrong")
	}
}

func TestSplitAdvancedCut(t *testing.T) {
	acs := []expr.AdvCut{{Left: 0, Op: expr.Lt, Right: 1}}
	schema := table.MustSchema([]table.Column{
		{Name: "a", Kind: table.Numeric, Min: 0, Max: 9},
		{Name: "b", Kind: table.Numeric, Min: 0, Max: 9},
	})
	tree := NewTree(schema, acs)
	l, r := tree.Split(tree.Root, AdvancedCut(0))
	if !l.Desc.AdvMay.Get(0) || l.Desc.AdvMayNot.Get(0) {
		t.Error("left child: may=1 mayNot=0 expected")
	}
	if r.Desc.AdvMay.Get(0) || !r.Desc.AdvMayNot.Get(0) {
		t.Error("right child: may=0 mayNot=1 expected")
	}
	// A query requiring AC0 must skip the right child.
	q := expr.Query{Root: expr.NewAdv(0)}
	if r.Desc.QueryMayMatch(q) {
		t.Error("right child must skip AC0 query")
	}
	if !l.Desc.QueryMayMatch(q) {
		t.Error("left child must not skip AC0 query")
	}
}

func TestRoutingUniqueAndComplete(t *testing.T) {
	tbl := randomTable(2000, 3)
	tree := NewTree(tbl.Schema, nil)
	l, _ := tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 50}))
	tree.Split(l, UnaryCut(expr.Pred{Col: 1, Op: expr.Eq, Literal: 0}))
	bids := tree.RouteTable(tbl)
	leaves := tree.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	// Every row lands in exactly one leaf; counts agree.
	total := 0
	for _, leaf := range leaves {
		total += leaf.Count
	}
	if total != tbl.N {
		t.Fatalf("leaf counts sum to %d, want %d", total, tbl.N)
	}
	// RouteRow agrees with RouteTable.
	row := make([]int64, 2)
	for i := 0; i < tbl.N; i += 37 {
		row = tbl.Row(i, row)
		if got := tree.RouteRow(row).BlockID; got != bids[i] {
			t.Fatalf("row %d: RouteRow=%d RouteTable=%d", i, got, bids[i])
		}
	}
	// Completeness: every row satisfies its own leaf's semantic
	// description (range + mask).
	tree.Freeze(tbl, bids)
	for i := 0; i < tbl.N; i += 17 {
		row = tbl.Row(i, row)
		leaf := leaves[bids[i]]
		for c := range row {
			if row[c] < leaf.Desc.Lo[c] || row[c] >= leaf.Desc.Hi[c] {
				t.Fatalf("row %d violates its leaf description on col %d", i, c)
			}
		}
		if m := leaf.Desc.Masks[1]; !m.Get(int(row[1])) {
			t.Fatalf("row %d categorical value not in leaf mask", i)
		}
	}
}

func TestQueryBlocksConservative(t *testing.T) {
	// QueryBlocks must return a superset of the blocks containing matches.
	tbl := randomTable(3000, 5)
	tree := NewTree(tbl.Schema, nil)
	l, r := tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 33}))
	tree.Split(l, UnaryCut(expr.Pred{Col: 1, Op: expr.Eq, Literal: 2}))
	tree.Split(r, UnaryCut(expr.Pred{Col: 0, Op: expr.Ge, Literal: 66}))
	bids := tree.RouteTable(tbl)
	tree.Freeze(tbl, bids)

	queries := []expr.Query{
		expr.AndQ("q1", expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}),
		expr.AndQ("q2", expr.Pred{Col: 1, Op: expr.Eq, Literal: 2}, expr.Pred{Col: 0, Op: expr.Ge, Literal: 50}),
		{Name: "q3", Root: expr.Or(
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Lt, Literal: 5}),
			expr.NewPred(expr.Pred{Col: 0, Op: expr.Gt, Literal: 95}))},
	}
	row := make([]int64, 2)
	for _, q := range queries {
		sel := make(map[int]bool)
		for _, b := range tree.QueryBlocks(q) {
			sel[b] = true
		}
		for i := 0; i < tbl.N; i++ {
			row = tbl.Row(i, row)
			if q.Eval(row, nil) && !sel[bids[i]] {
				t.Fatalf("%s: matching row %d in pruned block %d", q.Name, i, bids[i])
			}
		}
	}
}

func TestFreezeTightens(t *testing.T) {
	tbl := randomTable(1000, 7)
	tree := NewTree(tbl.Schema, nil)
	tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 50}))
	bids := tree.RouteTable(tbl)
	tree.Freeze(tbl, bids)
	left := tree.Leaves()[0]
	// Frozen hull must be within the logical interval and match the data.
	lo, hi, _ := tbl.MinMax(0, nil)
	_ = hi
	if left.Desc.Lo[0] < lo || left.Desc.Hi[0] > 50 {
		t.Errorf("frozen left interval [%d,%d) exceeds logical bounds", left.Desc.Lo[0], left.Desc.Hi[0])
	}
}

func TestSplitPanicsOnInternal(t *testing.T) {
	tree := NewTree(twoColSchema(), nil)
	tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}))
	defer func() {
		if recover() == nil {
			t.Fatal("second split of same node must panic")
		}
	}()
	tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 20}))
}

func TestSerializeRoundTrip(t *testing.T) {
	acs := []expr.AdvCut{{Left: 0, Op: expr.Lt, Right: 1}}
	schema := table.MustSchema([]table.Column{
		{Name: "a", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "b", Kind: table.Numeric, Min: 0, Max: 99},
		{Name: "c", Kind: table.Categorical, Dom: 5, Dict: []string{"p", "q", "r", "s", "t"}},
	})
	tree := NewTree(schema, acs)
	l, _ := tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 42}))
	tree.Split(l, AdvancedCut(0))
	rng := rand.New(rand.NewSource(11))
	tbl := table.New(schema, 500)
	for i := 0; i < 500; i++ {
		tbl.AppendRow([]int64{int64(rng.Intn(100)), int64(rng.Intn(100)), int64(rng.Intn(5))})
	}
	bids := tree.RouteTable(tbl)
	tree.Freeze(tbl, bids)

	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded tree must route every row identically.
	row := make([]int64, 3)
	for i := 0; i < tbl.N; i++ {
		row = tbl.Row(i, row)
		if got.RouteRow(row).BlockID != tree.RouteRow(row).BlockID {
			t.Fatalf("row %d routes differently after round trip", i)
		}
	}
	// And prune identically.
	q := expr.AndQ("q", expr.Pred{Col: 0, Op: expr.Lt, Literal: 10})
	a, b := tree.QueryBlocks(q), got.QueryBlocks(q)
	if len(a) != len(b) {
		t.Fatalf("QueryBlocks differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("QueryBlocks differ: %v vs %v", a, b)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := Unmarshal([]byte(`{"version":9}`)); err == nil {
		t.Error("bad version must fail")
	}
	if _, err := Unmarshal([]byte(`{"version":1,"nodes":[]}`)); err == nil {
		t.Error("empty node list must fail")
	}
}

func TestLeafPredicate(t *testing.T) {
	tree := NewTree(twoColSchema(), nil)
	l, _ := tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 10}))
	_, lr := tree.Split(l, UnaryCut(expr.Pred{Col: 1, Op: expr.Eq, Literal: 1}))
	got := tree.LeafPredicate(lr)
	want := "cpu < 10 AND NOT(mode = 1)"
	if got != want {
		t.Errorf("LeafPredicate = %q, want %q", got, want)
	}
}

func TestCutCountsDepths(t *testing.T) {
	tree := NewTree(twoColSchema(), nil)
	l, _ := tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 50}))
	tree.Split(l, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 25}))
	counts := tree.CutCounts()
	if counts["cpu"][0] != 1 || counts["cpu"][1] != 1 {
		t.Errorf("CutCounts = %v", counts)
	}
}

func TestTreeStringAndStats(t *testing.T) {
	tree := NewTree(twoColSchema(), nil)
	tree.Split(tree.Root, UnaryCut(expr.Pred{Col: 0, Op: expr.Lt, Literal: 50}))
	if tree.NumNodes() != 3 || tree.Depth() != 1 {
		t.Errorf("nodes=%d depth=%d", tree.NumNodes(), tree.Depth())
	}
	if s := tree.String(); len(s) == 0 {
		t.Error("empty render")
	}
}
