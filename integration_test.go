// Integration tests spanning the full pipeline: workload generation →
// planning → routing → block storage → physical execution. These assert
// the paper's invariants end-to-end through the public Dataset / Planner
// / Engine surface rather than per module.
package main

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/router"
	"repro/internal/workload"
	"repro/qd"
)

const itRows = 8000

// planIT plans a spec through the registry, failing the test on error.
func planIT(t *testing.T, strategy string, spec *workload.Spec, opt qd.PlanOptions) *qd.Plan {
	t.Helper()
	if opt.Cuts == nil {
		opt.Cuts = toCuts(spec.Cuts)
	}
	planner, err := qd.NewPlanner(strategy)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planner.Plan(specDataset(spec), opt)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestPipelineTPCH runs the full TPC-H pipeline and asserts the Table 2
// ordering plus physical-engine consistency.
func TestPipelineTPCH(t *testing.T) {
	spec := workload.TPCH(workload.TPCHConfig{Rows: itRows, SeedsPerTmpl: 3, Seed: 5})
	b := itRows / 100

	gPlan := planIT(t, "greedy", spec, qd.PlanOptions{MinBlockSize: b})
	basePlan := planIT(t, "random", spec, qd.PlanOptions{NumBlocks: gPlan.Layout.NumBlocks(), Seed: 5})
	buPlan := planIT(t, "bottomup", spec, qd.PlanOptions{MinBlockSize: b, SelectivityCap: 0.10})

	sel := qd.Selectivity(spec.Table, spec.Queries, spec.ACs)
	fBase := basePlan.AccessedFraction(nil)
	fBU := buPlan.AccessedFraction(nil)
	fG := gPlan.AccessedFraction(nil)

	// Table 2 ordering: baseline >= BU+ >= greedy >= selectivity.
	if !(fBase >= fBU && fBU >= fG && fG >= sel) {
		t.Errorf("ordering violated: baseline=%.3f bu=%.3f greedy=%.3f sel=%.3f",
			fBase, fBU, fG, sel)
	}
	// Paper: greedy reaches within ~3.3x of the selectivity lower bound
	// on TPC-H (26.3%% vs 21.3%% selectivity — within 2x excluding forced
	// scans). Use a loose 5x band to absorb generator differences.
	if fG > 5*sel {
		t.Errorf("greedy %.3f more than 5x above lower bound %.3f", fG, sel)
	}

	// Physical engine: rows scanned must equal the layout model and the
	// matched counts must equal exact evaluation, block store or not.
	store, err := qd.WriteStore(t.TempDir(), spec.Table, gPlan.Layout)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := qd.NewEngine(store, gPlan, qd.EngineDBMS, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	exact := qd.PerQueryMatches(spec.Table, spec.Queries, spec.ACs)
	for i, q := range spec.Queries[:20] {
		res, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsMatched != exact[i] {
			t.Fatalf("%s: engine matched %d, exact %d", q.Name, res.RowsMatched, exact[i])
		}
		if res.RowsScanned != gPlan.Layout.AccessedTuples(q) {
			t.Fatalf("%s: engine scanned %d, model %d", q.Name, res.RowsScanned, gPlan.Layout.AccessedTuples(q))
		}
	}
}

// TestPipelineErrorLogOrdering asserts the paper's ErrorLog finding: the
// deployed range baseline reads orders of magnitude more than a qd-tree.
func TestPipelineErrorLogOrdering(t *testing.T) {
	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: itRows, NumQueries: 120, Seed: 6})
	b := itRows / 400

	gPlan := planIT(t, "greedy", spec, qd.PlanOptions{MinBlockSize: b})
	basePlan := planIT(t, "range", spec, qd.PlanOptions{
		RangeColumn: workload.IngestColumn(spec.Table.Schema),
		NumBlocks:   gPlan.Layout.NumBlocks()})
	fBase, fG := basePlan.AccessedFraction(nil), gPlan.AccessedFraction(nil)
	if fBase < 10*fG {
		t.Errorf("qd-tree should beat the range baseline by >=10x: baseline %.4f vs greedy %.4f", fBase, fG)
	}
}

// TestRLTreeDeployableEndToEnd: an RL-built plan must satisfy the same
// deployment invariants as a greedy plan.
func TestRLTreeDeployableEndToEnd(t *testing.T) {
	spec := workload.Fig3(itRows, 7)
	plan := planIT(t, "woodblock", spec, qd.PlanOptions{
		MinBlockSize: 80, Hidden: 16, MaxEpisodes: 12, Seed: 7})
	store, err := qd.WriteStore(t.TempDir(), spec.Table, plan.Layout)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := qd.NewEngine(store, plan, qd.EngineSpark, qd.ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	exact := qd.PerQueryMatches(spec.Table, spec.Queries, spec.ACs)
	for i, q := range spec.Queries {
		r, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if r.RowsMatched != exact[i] {
			t.Fatalf("%s: matched %d, exact %d", q.Name, r.RowsMatched, exact[i])
		}
	}
	// Query rewriting end to end.
	qr := &router.QueryRouter{Tree: plan.Tree}
	if out := qr.Rewrite("SELECT * FROM t WHERE disk < 100", spec.Queries[1]); out == "" {
		t.Fatal("empty rewrite")
	}
}

// TestPropertyRoutingPartition: for any random tree over random data,
// routing partitions the table (leaf counts sum to N) and every scanned
// set is a superset of the matching set.
func TestPropertyRoutingPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := workload.Fig3(500+rng.Intn(1500), seed)
		cuts := toCuts(spec.Cuts)
		tree := qd.NewTree(spec.Table.Schema, spec.ACs)
		// Random sequence of splits.
		leaves := []*qd.Node{tree.Root}
		for k := 0; k < 3; k++ {
			n := leaves[rng.Intn(len(leaves))]
			if !n.IsLeaf() {
				continue
			}
			l, r := tree.Split(n, cuts[rng.Intn(len(cuts))])
			leaves = append(leaves, l, r)
		}
		bids := tree.RouteTable(spec.Table)
		tree.Freeze(spec.Table, bids)
		total := 0
		for _, leaf := range tree.Leaves() {
			total += leaf.Count
		}
		if total != spec.Table.N {
			return false
		}
		row := make([]int64, 2)
		for _, q := range spec.Queries {
			sel := map[int]bool{}
			for _, b := range tree.QueryBlocks(q) {
				sel[b] = true
			}
			for i := 0; i < spec.Table.N; i += 7 {
				row = spec.Table.Row(i, row)
				if q.Eval(row, spec.ACs) && !sel[bids[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLayoutConservative: any random block assignment yields a
// layout whose accessed counts upper-bound true matches.
func TestPropertyLayoutConservative(t *testing.T) {
	f := func(seed int64, nblocks uint8) bool {
		k := int(nblocks)%16 + 1
		spec := workload.Fig3(800, seed)
		rng := rand.New(rand.NewSource(seed))
		bids := make([]int, spec.Table.N)
		for i := range bids {
			bids[i] = rng.Intn(k)
		}
		layout := qd.NewLayout("rand", spec.Table, bids, k, spec.ACs)
		matches := qd.PerQueryMatches(spec.Table, spec.Queries, spec.ACs)
		for i, q := range spec.Queries {
			if layout.AccessedTuples(q) < matches[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSerializedTreePrunesIdentically across the full TPC-H workload.
func TestSerializedTreePrunesIdentically(t *testing.T) {
	spec := workload.TPCH(workload.TPCHConfig{Rows: 3000, SeedsPerTmpl: 2, Seed: 8})
	plan := planIT(t, "greedy", spec, qd.PlanOptions{MinBlockSize: 100})
	tree := plan.Tree
	data, err := tree.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := qd.LoadTree(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range spec.Queries {
		a, b := tree.QueryBlocks(q), back.QueryBlocks(q)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d blocks after round trip", q.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: block lists differ", q.Name)
			}
		}
	}
}

// TestCompressedFormatAcceptance pins the block-format-v2 acceptance bar
// on the categorical-heavy ErrorLog-Int demo workload: at least 2x
// on-disk size reduction versus the v1 plain format and at least 1.5x
// modeled scan-throughput (SimTime charges encoded bytes), with
// bit-identical per-query match counts between the two formats.
func TestCompressedFormatAcceptance(t *testing.T) {
	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: itRows, NumQueries: 80, Seed: 7})
	plan := planIT(t, "greedy", spec, qd.PlanOptions{MinBlockSize: itRows / 64})
	v1, err := qd.WriteStore(t.TempDir(), spec.Table, plan.Layout, qd.StoreOptions{FormatVersion: qd.StoreFormatV1})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := qd.WriteStore(t.TempDir(), spec.Table, plan.Layout)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := v1.Sizes(), v2.Sizes()
	if s1.EncodedBytes < 2*s2.EncodedBytes {
		t.Errorf("on-disk reduction %.2fx below the 2x acceptance bar (v1 %d, v2 %d bytes)",
			float64(s1.EncodedBytes)/float64(s2.EncodedBytes), s1.EncodedBytes, s2.EncodedBytes)
	}
	for _, prof := range []qd.EngineProfile{qd.EngineSpark, qd.EngineDBMS} {
		e1, err := qd.NewEngine(v1, plan, prof, qd.ExecOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		e2, err := qd.NewEngine(v2, plan, prof, qd.ExecOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		w1, err := e1.Workload(spec.Queries)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := e2.Workload(spec.Queries)
		if err != nil {
			t.Fatal(err)
		}
		for i := range w1.Results {
			if w1.Results[i].RowsMatched != w2.Results[i].RowsMatched {
				t.Fatalf("%s: query %d counts differ between formats: v1 %d, v2 %d",
					prof.Name, i, w1.Results[i].RowsMatched, w2.Results[i].RowsMatched)
			}
		}
		if speedup := float64(w1.TotalSimTime) / float64(w2.TotalSimTime+1); speedup < 1.5 {
			t.Errorf("%s: modeled scan speedup %.2fx below the 1.5x acceptance bar (v1 %v, v2 %v)",
				prof.Name, speedup, w1.TotalSimTime, w2.TotalSimTime)
		}
		e1.Close()
		e2.Close()
	}
}

// TestAggregatePushdownAcceptance pins the aggregation acceptance bar on
// the ErrorLog-Int demo: a filtered SUM through the vectorized pushdown
// engine must beat decode-then-aggregate by at least 1.5x modeled time,
// with results identical to the naive reference evaluator.
func TestAggregatePushdownAcceptance(t *testing.T) {
	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: itRows, NumQueries: 40, Seed: 7})
	plan := planIT(t, "greedy", spec, qd.PlanOptions{MinBlockSize: itRows / 64})
	store, err := qd.WriteStore(t.TempDir(), spec.Table, plan.Layout)
	if err != nil {
		t.Fatal(err)
	}
	aq, _, err := qd.ParseSelect(spec.Table.Schema,
		"SELECT SUM(x_num06), COUNT(*) FROM logs WHERE ingest_date >= 48 AND validity = 'VALID'")
	if err != nil {
		t.Fatal(err)
	}
	truth := qd.ReferenceAggregate(spec.Table, aq, plan.ACs)
	for _, prof := range []qd.EngineProfile{qd.EngineSpark, qd.EngineDBMS} {
		eng, err := qd.NewEngine(store, plan, prof, qd.ExecOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		push, err := eng.Aggregate(aq)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := qd.AggregateNaive(store, plan, aq, prof, qd.RouteQdTree)
		if err != nil {
			t.Fatal(err)
		}
		for _, rows := range []qd.Rows{push.Rows, naive.Rows} {
			if len(rows) != 1 || rows[0].Vals[0].Int != truth[0].Vals[0].Int || rows[0].Vals[1].Int != truth[0].Vals[1].Int {
				t.Fatalf("%s: results diverge from reference: push %+v naive %+v truth %+v",
					prof.Name, push.Rows, naive.Rows, truth)
			}
		}
		if speedup := float64(naive.SimTime) / float64(push.SimTime+1); speedup < 1.5 {
			t.Errorf("%s: filtered-SUM pushdown speedup %.2fx below the 1.5x acceptance bar (naive %v, pushdown %v)",
				prof.Name, speedup, naive.SimTime, push.SimTime)
		}
		eng.Close()
	}
}
