// Integration tests spanning the full pipeline: workload generation →
// construction → routing → block storage → physical execution. These
// assert the paper's invariants end-to-end rather than per module.
package main

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baselines"
	"repro/internal/blockstore"
	"repro/internal/bottomup"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/greedy"
	"repro/internal/rl"
	"repro/internal/router"
	"repro/internal/workload"
)

const itRows = 8000

// TestPipelineTPCH runs the full TPC-H pipeline and asserts the Table 2
// ordering plus physical-engine consistency.
func TestPipelineTPCH(t *testing.T) {
	spec := workload.TPCH(workload.TPCHConfig{Rows: itRows, SeedsPerTmpl: 3, Seed: 5})
	cuts := toCuts(spec.Cuts)
	b := itRows / 100

	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: b, Cuts: cuts, Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	gl := cost.FromTree("greedy", tree, spec.Table)
	base, err := baselines.Random(spec.Table, gl.NumBlocks(), spec.ACs, 5)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := bottomup.Build(spec.Table, spec.ACs, bottomup.Options{
		MinSize: b, Cuts: cuts, Queries: spec.Queries, SelectivityCap: 0.10})
	if err != nil {
		t.Fatal(err)
	}

	sel := cost.Selectivity(spec.Table, spec.Queries, spec.ACs)
	fBase := base.AccessedFraction(spec.Queries)
	fBU := bu.Layout.AccessedFraction(spec.Queries)
	fG := gl.AccessedFraction(spec.Queries)

	// Table 2 ordering: baseline >= BU+ >= greedy >= selectivity.
	if !(fBase >= fBU && fBU >= fG && fG >= sel) {
		t.Errorf("ordering violated: baseline=%.3f bu=%.3f greedy=%.3f sel=%.3f",
			fBase, fBU, fG, sel)
	}
	// Paper: greedy reaches within ~3.3x of the selectivity lower bound
	// on TPC-H (26.3%% vs 21.3%% selectivity — within 2x excluding forced
	// scans). Use a loose 5x band to absorb generator differences.
	if fG > 5*sel {
		t.Errorf("greedy %.3f more than 5x above lower bound %.3f", fG, sel)
	}

	// Physical engine: rows scanned must equal the layout model and the
	// matched counts must equal exact evaluation, block store or not.
	store, err := blockstore.Write(t.TempDir(), spec.Table, gl.BIDs, gl.NumBlocks())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	exact := cost.PerQueryMatches(spec.Table, spec.Queries, spec.ACs)
	for i, q := range spec.Queries[:20] {
		res, err := exec.Run(store, gl, q, spec.ACs, exec.EngineDBMS, exec.RouteQdTree)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsMatched != exact[i] {
			t.Fatalf("%s: engine matched %d, exact %d", q.Name, res.RowsMatched, exact[i])
		}
		if res.RowsScanned != gl.AccessedTuples(q) {
			t.Fatalf("%s: engine scanned %d, model %d", q.Name, res.RowsScanned, gl.AccessedTuples(q))
		}
	}
}

// TestPipelineErrorLogOrdering asserts the paper's ErrorLog finding: the
// deployed range baseline reads orders of magnitude more than a qd-tree.
func TestPipelineErrorLogOrdering(t *testing.T) {
	spec := workload.ErrorLogInt(workload.ErrorLogConfig{Rows: itRows, NumQueries: 120, Seed: 6})
	cuts := toCuts(spec.Cuts)
	b := itRows / 400

	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: b, Cuts: cuts, Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	gl := cost.FromTree("greedy", tree, spec.Table)
	base, err := baselines.Range(spec.Table, workload.IngestColumn(spec.Table.Schema), gl.NumBlocks(), spec.ACs)
	if err != nil {
		t.Fatal(err)
	}
	fBase, fG := base.AccessedFraction(spec.Queries), gl.AccessedFraction(spec.Queries)
	if fBase < 10*fG {
		t.Errorf("qd-tree should beat the range baseline by >=10x: baseline %.4f vs greedy %.4f", fBase, fG)
	}
}

// TestRLTreeDeployableEndToEnd: an RL-built tree must satisfy the same
// deployment invariants as a greedy tree.
func TestRLTreeDeployableEndToEnd(t *testing.T) {
	spec := workload.Fig3(itRows, 7)
	res, err := rl.Build(spec.Table, spec.ACs, rl.Options{
		MinSize: 80, Cuts: toCuts(spec.Cuts), Queries: spec.Queries,
		Hidden: 16, MaxEpisodes: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gl := cost.FromTree("rl", res.Tree, spec.Table)
	store, err := blockstore.Write(t.TempDir(), spec.Table, gl.BIDs, gl.NumBlocks())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	exact := cost.PerQueryMatches(spec.Table, spec.Queries, spec.ACs)
	for i, q := range spec.Queries {
		r, err := exec.Run(store, gl, q, spec.ACs, exec.EngineSpark, exec.RouteQdTree)
		if err != nil {
			t.Fatal(err)
		}
		if r.RowsMatched != exact[i] {
			t.Fatalf("%s: matched %d, exact %d", q.Name, r.RowsMatched, exact[i])
		}
	}
	// Query rewriting end to end.
	qr := &router.QueryRouter{Tree: res.Tree}
	if out := qr.Rewrite("SELECT * FROM t WHERE disk < 100", spec.Queries[1]); out == "" {
		t.Fatal("empty rewrite")
	}
}

// TestPropertyRoutingPartition: for any random tree over random data,
// routing partitions the table (leaf counts sum to N) and every scanned
// set is a superset of the matching set.
func TestPropertyRoutingPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := workload.Fig3(500+rng.Intn(1500), seed)
		cuts := toCuts(spec.Cuts)
		tree := core.NewTree(spec.Table.Schema, spec.ACs)
		// Random sequence of splits.
		leaves := []*core.Node{tree.Root}
		for k := 0; k < 3; k++ {
			n := leaves[rng.Intn(len(leaves))]
			if !n.IsLeaf() {
				continue
			}
			l, r := tree.Split(n, cuts[rng.Intn(len(cuts))])
			leaves = append(leaves, l, r)
		}
		bids := tree.RouteTable(spec.Table)
		tree.Freeze(spec.Table, bids)
		total := 0
		for _, leaf := range tree.Leaves() {
			total += leaf.Count
		}
		if total != spec.Table.N {
			return false
		}
		row := make([]int64, 2)
		for _, q := range spec.Queries {
			sel := map[int]bool{}
			for _, b := range tree.QueryBlocks(q) {
				sel[b] = true
			}
			for i := 0; i < spec.Table.N; i += 7 {
				row = spec.Table.Row(i, row)
				if q.Eval(row, spec.ACs) && !sel[bids[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLayoutConservative: any random block assignment yields a
// layout whose accessed counts upper-bound true matches.
func TestPropertyLayoutConservative(t *testing.T) {
	f := func(seed int64, nblocks uint8) bool {
		k := int(nblocks)%16 + 1
		spec := workload.Fig3(800, seed)
		rng := rand.New(rand.NewSource(seed))
		bids := make([]int, spec.Table.N)
		for i := range bids {
			bids[i] = rng.Intn(k)
		}
		layout := cost.NewLayout("rand", spec.Table, bids, k, spec.ACs)
		matches := cost.PerQueryMatches(spec.Table, spec.Queries, spec.ACs)
		for i, q := range spec.Queries {
			if layout.AccessedTuples(q) < matches[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSerializedTreePrunesIdentically across the full TPC-H workload.
func TestSerializedTreePrunesIdentically(t *testing.T) {
	spec := workload.TPCH(workload.TPCHConfig{Rows: 3000, SeedsPerTmpl: 2, Seed: 8})
	tree, err := greedy.Build(spec.Table, spec.ACs, greedy.Options{
		MinSize: 100, Cuts: toCuts(spec.Cuts), Queries: spec.Queries})
	if err != nil {
		t.Fatal(err)
	}
	bids := tree.RouteTable(spec.Table)
	tree.Freeze(spec.Table, bids)
	data, err := tree.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range spec.Queries {
		a, b := tree.QueryBlocks(q), back.QueryBlocks(q)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d blocks after round trip", q.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: block lists differ", q.Name)
			}
		}
	}
}
